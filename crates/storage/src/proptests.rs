//! Property tests: the log's shape invariants hold under arbitrary
//! append / truncate / compact interleavings.

use crate::entry::LogEntry;
use crate::memlog::MemLog;
use bytes::Bytes;
use proptest::prelude::*;
use recraft_types::{EpochTerm, LogIndex};

#[derive(Debug, Clone)]
enum Op {
    Append(u32),
    TruncateFrom(u64),
    CompactTo(u64),
    Reset(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u32..8).prop_map(Op::Append),
        2 => (0u64..64).prop_map(Op::TruncateFrom),
        2 => (0u64..64).prop_map(Op::CompactTo),
        1 => (0u32..4).prop_map(Op::Reset),
    ]
}

proptest! {
    #[test]
    fn log_shape_invariants(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let mut log = MemLog::new();
        // A model of what must be retained: (index, term) pairs.
        let mut model: Vec<(u64, u32)> = Vec::new();
        let mut base = 0u64;
        for op in ops {
            match op {
                Op::Append(term) => {
                    let index = log.last_index().next();
                    log.append(LogEntry::command(
                        index,
                        EpochTerm::new(0, term),
                        Bytes::from_static(b"x"),
                    ));
                    model.push((index.0, term));
                }
                Op::TruncateFrom(i) => {
                    let res = log.truncate_from(LogIndex(i));
                    if i <= base {
                        prop_assert!(res.is_err());
                    } else {
                        model.retain(|(idx, _)| *idx < i);
                    }
                }
                Op::CompactTo(i) => {
                    let eterm = log.eterm_at(LogIndex(i));
                    let res = log.compact_to(LogIndex(i), eterm.unwrap_or(EpochTerm::ZERO));
                    if i >= base && i <= log.last_index().0.max(base) && eterm.is_some() {
                        prop_assert!(res.is_ok());
                        base = i;
                        model.retain(|(idx, _)| *idx > i);
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Reset(epoch) => {
                    log.reset(LogIndex::ZERO, EpochTerm::new(epoch, 0));
                    model.clear();
                    base = 0;
                }
            }
            // Invariants after every step.
            prop_assert_eq!(log.len(), model.len());
            prop_assert_eq!(log.first_index(), log.base_index().next());
            prop_assert!(log.last_index() >= log.base_index());
            for (idx, term) in &model {
                let e = log.entry(LogIndex(*idx)).expect("retained entry");
                prop_assert_eq!(e.index.0, *idx);
                prop_assert_eq!(e.eterm.term(), *term);
            }
            // Contiguity: entries are dense from first to last.
            let mut expect = log.first_index();
            for e in log.iter() {
                prop_assert_eq!(e.index, expect);
                expect = expect.next();
            }
        }
    }

    #[test]
    fn slices_agree_with_entries(
        n in 1u64..40,
        from in 0u64..50,
        to in 0u64..50,
    ) {
        let mut log = MemLog::new();
        for i in 1..=n {
            log.append(LogEntry::noop(LogIndex(i), EpochTerm::new(0, 1)));
        }
        let slice = log.slice(LogIndex(from), LogIndex(to));
        let expected: Vec<u64> = (from.max(1)..=to.min(n)).collect();
        prop_assert_eq!(
            slice.iter().map(|e| e.index.0).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn matches_iff_entry_present_with_eterm(
        n in 1u64..20,
        probe in 0u64..25,
        term in 1u32..4,
    ) {
        let mut log = MemLog::new();
        for i in 1..=n {
            log.append(LogEntry::noop(LogIndex(i), EpochTerm::new(0, (i % 3) as u32 + 1)));
        }
        let m = log.matches(LogIndex(probe), EpochTerm::new(0, term));
        let expected = if probe == 0 {
            term == 0 // base matches only (0, ZERO); term >= 1 here, so false
        } else {
            probe <= n && (probe % 3) as u32 + 1 == term
        };
        prop_assert_eq!(m, expected);
    }
}
