//! Snapshots of the applied state machine.

use bytes::Bytes;
use recraft_types::{ClusterId, EpochTerm, LogIndex, RangeSet, SessionTable};

/// A snapshot of the applied state up to (and including) `last_index`.
///
/// The payload is a sequence of opaque, bounded-size *chunks*: the state
/// machine encodes each chunk independently (`recraft-kv` puts one key
/// sub-range per chunk), so no single allocation on either side of a
/// transfer ever holds the whole keyspace. Whole-blob state machines simply
/// produce one chunk. Split and merge exchange snapshots tagged with the
/// key ranges they cover so the merge can combine disjoint chunks
/// ("exchange them, and use the combined snapshot as the base state",
/// §III-C2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The last applied log index folded into this snapshot.
    pub last_index: LogIndex,
    /// The epoch-term of that entry.
    pub last_eterm: EpochTerm,
    /// The cluster that produced the snapshot.
    pub cluster: ClusterId,
    /// The key ranges the payload covers.
    pub ranges: RangeSet,
    /// Opaque encoded state-machine payload, in bounded-size chunks. Node
    /// snapshots always carry at least one chunk (an empty state still
    /// encodes to a non-empty chunk), so a streamed install always has a
    /// first frame to ride the session table on.
    pub chunks: Vec<Bytes>,
    /// The exactly-once session dedup table at the snapshot point. Part of
    /// the applied state: restarts, snapshot installs, split parts, and
    /// merge exchange all carry it so retried client writes stay
    /// deduplicated across reconfigurations.
    pub sessions: SessionTable,
}

impl Snapshot {
    /// An empty snapshot at the log origin for `cluster`.
    #[must_use]
    pub fn empty(cluster: ClusterId, ranges: RangeSet) -> Self {
        Snapshot {
            last_index: LogIndex::ZERO,
            last_eterm: EpochTerm::ZERO,
            cluster,
            ranges,
            chunks: Vec::new(),
            sessions: SessionTable::new(),
        }
    }

    /// The payload size in bytes (what data exchange actually transfers).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(Bytes::len).sum::<usize>() + self.sessions.size_bytes()
    }

    /// The largest single chunk — the peak contiguous allocation any
    /// transfer of this snapshot requires.
    #[must_use]
    pub fn max_chunk_bytes(&self) -> usize {
        self.chunks.iter().map(Bytes::len).max().unwrap_or(0)
    }

    /// Splits the snapshot into its install-stream frames: one frame per
    /// chunk, sharing the stream identity `(cluster, last_index,
    /// last_eterm, total)`. The session table rides *only* the first frame
    /// — it is part of the snapshot, not of every chunk, so a chunked
    /// install sends it exactly once.
    #[must_use]
    pub fn frames(&self) -> Vec<SnapshotFrame> {
        let chunks: &[Bytes] = if self.chunks.is_empty() {
            // Degenerate empty snapshot: one empty frame keeps the stream
            // well-formed (a zero-frame stream could never complete).
            &[Bytes::new()]
        } else {
            &self.chunks
        };
        let total = chunks.len() as u32;
        chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| SnapshotFrame {
                last_index: self.last_index,
                last_eterm: self.last_eterm,
                cluster: self.cluster,
                ranges: self.ranges.clone(),
                seq: i as u32,
                total,
                chunk: chunk.clone(),
                sessions: (i == 0).then(|| self.sessions.clone()),
            })
            .collect()
    }
}

/// One frame of a chunked snapshot install stream.
///
/// The receiver assembles frames of one stream identity `(cluster,
/// last_index, last_eterm, total)` until every `seq in 0..total` arrived,
/// then installs the whole snapshot atomically. Frames are idempotent and
/// reorderable; a frame from a *different* stream identity restarts
/// assembly from scratch (the sender changed its snapshot, or leadership
/// moved mid-stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// The last applied log index of the snapshot being streamed.
    pub last_index: LogIndex,
    /// The epoch-term of that entry.
    pub last_eterm: EpochTerm,
    /// The cluster that produced the snapshot.
    pub cluster: ClusterId,
    /// The key ranges the snapshot covers.
    pub ranges: RangeSet,
    /// This frame's position in the stream.
    pub seq: u32,
    /// Total number of frames in the stream.
    pub total: u32,
    /// This frame's payload chunk.
    pub chunk: Bytes,
    /// The session table — `Some` on the first frame only (sent once per
    /// install, not once per chunk).
    pub sessions: Option<SessionTable>,
}

impl SnapshotFrame {
    /// Approximate wire size in bytes (chunk + session table when carried).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.chunk.len() + self.sessions.as_ref().map_or(0, SessionTable::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::empty(ClusterId(1), RangeSet::full());
        assert_eq!(s.last_index, LogIndex::ZERO);
        assert_eq!(s.size_bytes(), 0);
        assert_eq!(s.max_chunk_bytes(), 0);
        assert_eq!(s.cluster, ClusterId(1));
        // Even the degenerate snapshot streams as one (empty) frame.
        let frames = s.frames();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].sessions.is_some());
    }

    #[test]
    fn frames_carry_sessions_exactly_once() {
        let mut sessions = SessionTable::new();
        sessions.record(recraft_types::SessionId(1), 5, Bytes::from_static(b"ok"));
        let s = Snapshot {
            last_index: LogIndex(9),
            last_eterm: EpochTerm::new(1, 2),
            cluster: ClusterId(3),
            ranges: RangeSet::full(),
            chunks: vec![
                Bytes::from_static(b"aaa"),
                Bytes::from_static(b"bbb"),
                Bytes::from_static(b"cc"),
            ],
            sessions,
        };
        let frames = s.frames();
        assert_eq!(frames.len(), 3);
        assert!(frames[0].sessions.is_some(), "first frame rides the table");
        assert!(frames[1..].iter().all(|f| f.sessions.is_none()));
        assert!(frames.iter().all(|f| f.total == 3));
        assert_eq!(s.max_chunk_bytes(), 3);
        assert_eq!(
            frames.iter().map(|f| f.chunk.len()).sum::<usize>(),
            s.chunks.iter().map(Bytes::len).sum::<usize>()
        );
    }
}
