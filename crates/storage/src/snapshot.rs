//! Snapshots of the applied state machine.

use bytes::Bytes;
use recraft_types::{ClusterId, EpochTerm, LogIndex, RangeSet, SessionTable};

/// A snapshot of the applied state up to (and including) `last_index`.
///
/// The payload is opaque to the consensus layer; `recraft-kv` encodes its
/// key-value map into it. Split and merge exchange snapshots tagged with the
/// key ranges they cover so the merge can combine disjoint chunks
/// ("exchange them, and use the combined snapshot as the base state",
/// §III-C2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The last applied log index folded into this snapshot.
    pub last_index: LogIndex,
    /// The epoch-term of that entry.
    pub last_eterm: EpochTerm,
    /// The cluster that produced the snapshot.
    pub cluster: ClusterId,
    /// The key ranges the payload covers.
    pub ranges: RangeSet,
    /// Opaque encoded state-machine payload.
    pub data: Bytes,
    /// The exactly-once session dedup table at the snapshot point. Part of
    /// the applied state: restarts, snapshot installs, split parts, and
    /// merge exchange all carry it so retried client writes stay
    /// deduplicated across reconfigurations.
    pub sessions: SessionTable,
}

impl Snapshot {
    /// An empty snapshot at the log origin for `cluster`.
    #[must_use]
    pub fn empty(cluster: ClusterId, ranges: RangeSet) -> Self {
        Snapshot {
            last_index: LogIndex::ZERO,
            last_eterm: EpochTerm::ZERO,
            cluster,
            ranges,
            data: Bytes::new(),
            sessions: SessionTable::new(),
        }
    }

    /// The payload size in bytes (what data exchange actually transfers).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.sessions.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::empty(ClusterId(1), RangeSet::full());
        assert_eq!(s.last_index, LogIndex::ZERO);
        assert_eq!(s.size_bytes(), 0);
        assert_eq!(s.cluster, ClusterId(1));
    }
}
