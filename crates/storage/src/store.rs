//! The pluggable durable-storage boundary.
//!
//! [`LogStore`] covers everything a ReCraft node persists: the replicated
//! log (append / truncate / compact / the merge protocol's renumbering
//! [`LogStore::reset`]), the per-node metadata that must be durable before a
//! message leaves the node ([`NodeMeta`]: hard state plus cluster identity),
//! and the snapshot the state machine restarts from.
//!
//! Two implementations ship: [`MemLog`](crate::MemLog), the original
//! in-memory backend (state survives an in-process [`restart`] but not a real
//! reboot), and [`WalLog`](crate::WalLog), a segmented write-ahead log with
//! crash recovery.
//!
//! # The write-ahead contract
//!
//! Mutations may buffer; [`LogStore::sync`] makes everything written so far
//! durable. The consensus layer calls `sync` before externalizing any output
//! that acknowledges the written state (votes, append responses), so a crash
//! can only ever lose writes that were never acknowledged to anyone.
//!
//! [`restart`]: https://en.wikipedia.org/wiki/Raft_(algorithm)

use crate::entry::LogEntry;
use crate::snapshot::Snapshot;
use crate::state::HardState;
use recraft_types::{ClusterConfig, ClusterId, EpochTerm, LogIndex, NodeId, Result, TxId};
use std::collections::BTreeSet;

/// A record of one completed reconfiguration, kept for long-term recovery
/// (§V: "ReCraft requires all clusters to maintain the reconfiguration
/// history even after garbage collecting the log"). Persisted as part of
/// [`NodeMeta`], so the history survives real reboots, not just the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigRecord {
    /// What happened.
    pub kind: &'static str,
    /// The cluster before.
    pub old_cluster: ClusterId,
    /// The cluster after.
    pub new_cluster: ClusterId,
    /// Members before.
    pub members_before: BTreeSet<NodeId>,
    /// Members after.
    pub members_after: BTreeSet<NodeId>,
    /// The node's epoch-term when the record was made.
    pub at: recraft_types::EpochTerm,
    /// The merge transaction involved, if any.
    pub tx: Option<TxId>,
}

/// The per-node metadata that must be durable before the node answers RPCs:
/// the Raft hard state plus the ReCraft cluster-identity fields (a split or
/// merge changes what cluster a node *is*, and a reboot must not forget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// Current epoch-term and the vote granted in it.
    pub hard: HardState,
    /// The cluster this node belongs to.
    pub cluster: ClusterId,
    /// The reconfiguration-generation epoch of that identity.
    pub cluster_epoch: u32,
    /// Whether the node holds a real configuration (false for joiners).
    pub bootstrapped: bool,
    /// The cluster a joiner was provisioned for, if any.
    pub join_target: Option<ClusterId>,
    /// Completed reconfigurations this node witnessed (§V history). The
    /// records outlive log compaction by design. Riding in the metadata
    /// blob means every hard-state flush re-encodes the history; that is
    /// acceptable because it grows only with *reconfigurations* (rare,
    /// human-scale events), never with traffic — if a deployment ever
    /// accumulates enough records to matter, split them into an
    /// append-only file of their own.
    pub history: Vec<ReconfigRecord>,
}

/// The storage surface the consensus core drives.
///
/// Log semantics are exactly [`MemLog`](crate::MemLog)'s: a compacted base
/// `(base_index, base_eterm)` followed by contiguous entries. All reads are
/// served from memory (implementations keep an in-memory index); durability
/// applies to mutations.
pub trait LogStore: std::fmt::Debug + Send {
    // ---- Log shape (read side) ------------------------------------------

    /// The compaction base index (entries at or below it are gone).
    fn base_index(&self) -> LogIndex;

    /// The epoch-term recorded at the base index.
    fn base_eterm(&self) -> EpochTerm;

    /// Index of the first retained entry.
    fn first_index(&self) -> LogIndex {
        self.base_index().next()
    }

    /// Index of the last entry (the base index if the log is empty).
    fn last_index(&self) -> LogIndex;

    /// Epoch-term of the last entry (the base epoch-term if empty).
    fn last_eterm(&self) -> EpochTerm;

    /// Number of retained entries.
    fn len(&self) -> usize;

    /// Whether no entries are retained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry at `index`, if retained.
    fn entry(&self, index: LogIndex) -> Option<LogEntry>;

    /// The epoch-term at `index`: the base epoch-term for the base index,
    /// otherwise the retained entry's. `None` if compacted away or past the
    /// end.
    fn eterm_at(&self, index: LogIndex) -> Option<EpochTerm>;

    /// Whether the log matches `(index, eterm)` — the AppendEntries
    /// consistency check. The base position counts as matching.
    fn matches(&self, index: LogIndex, eterm: EpochTerm) -> bool {
        self.eterm_at(index) == Some(eterm)
    }

    /// Entries in `[from, to]`, clamped to what is retained.
    fn slice(&self, from: LogIndex, to: LogIndex) -> Vec<LogEntry>;

    /// Entries from `from` through the end of the log.
    fn tail(&self, from: LogIndex) -> Vec<LogEntry> {
        self.slice(from, self.last_index())
    }

    // ---- Log mutations ---------------------------------------------------

    /// Appends one entry to the tail.
    ///
    /// # Panics
    /// Panics if `entry.index` is not exactly `last_index + 1` — appends are
    /// contiguous by construction.
    fn append(&mut self, entry: LogEntry);

    /// Appends a contiguous run of entries in one operation. Durable
    /// backends fold the whole run into a single on-disk record (the
    /// group-commit write path: one frame, one checksum, one write — and a
    /// torn record rolls the *entire* batch back atomically at recovery).
    /// The default loops [`LogStore::append`].
    ///
    /// # Panics
    /// Panics if the first entry's index is not exactly `last_index + 1` or
    /// the run is not contiguous.
    fn append_batch(&mut self, entries: Vec<LogEntry>) {
        for entry in entries {
            self.append(entry);
        }
    }

    /// Removes every entry at or after `index` (follower conflict
    /// resolution). Returns the number of entries removed.
    ///
    /// # Errors
    /// Returns [`recraft_types::Error::IndexOutOfRange`] if `index` is at or
    /// below the base.
    fn truncate_from(&mut self, index: LogIndex) -> Result<usize>;

    /// Compacts the log: drops entries at or below `index` and records
    /// `(index, eterm)` as the new base. The covering snapshot must already
    /// be durable (see [`LogStore::save_snapshot`]).
    ///
    /// # Errors
    /// Returns [`recraft_types::Error::IndexOutOfRange`] if `index` is below
    /// the current base or beyond the last entry.
    fn compact_to(&mut self, index: LogIndex, eterm: EpochTerm) -> Result<()>;

    /// Discards everything and installs a fresh base — snapshot installation
    /// and the merge protocol's log renumbering (§III-C2).
    fn reset(&mut self, base_index: LogIndex, base_eterm: EpochTerm);

    // ---- Durable node state ---------------------------------------------

    /// Persists the node metadata. Durable once [`LogStore::sync`] returns.
    fn save_meta(&mut self, meta: &NodeMeta);

    /// The last persisted node metadata, if any.
    fn load_meta(&self) -> Option<NodeMeta>;

    /// Atomically persists a snapshot and the configuration at its tail.
    /// Must be durable *before* the log is compacted or reset past it —
    /// implementations make this call itself atomic and synchronous.
    fn save_snapshot(&mut self, snapshot: &Snapshot, config: &ClusterConfig);

    /// The last persisted snapshot and its configuration, if any.
    fn load_snapshot(&self) -> Option<(Snapshot, ClusterConfig)>;

    /// Makes every buffered mutation durable. Called by the node before its
    /// outputs are externalized (the write-ahead barrier).
    fn sync(&mut self);

    /// How many [`LogStore::sync`] barriers actually had buffered log writes
    /// to make durable — the group-commit count. One `take_outputs` round
    /// that appended any number of entries contributes exactly one. Backends
    /// without a durability cost may return 0.
    fn sync_count(&self) -> u64 {
        0
    }

    // ---- Crash modelling -------------------------------------------------

    /// Whether this backend survives a real process reboot (drives the
    /// simulator's choice between in-memory restart and reopen-from-disk).
    fn persistent(&self) -> bool {
        false
    }

    /// Power-cut injection hook: discards buffered-but-unsynced state as a
    /// crash would, except for up to `keep_unsynced` bytes that had already
    /// reached the disk — the torn tail a recovery pass must detect and
    /// drop. When the budget exceeds what was in flight, durable backends
    /// leave a partial garbage frame instead (the record that was being
    /// written at the instant of death). In-memory backends ignore this
    /// (their crash model is process death).
    fn power_cut(&mut self, keep_unsynced: usize) {
        let _ = keep_unsynced;
    }
}

impl<L: LogStore + ?Sized> LogStore for Box<L> {
    fn base_index(&self) -> LogIndex {
        (**self).base_index()
    }
    fn base_eterm(&self) -> EpochTerm {
        (**self).base_eterm()
    }
    fn first_index(&self) -> LogIndex {
        (**self).first_index()
    }
    fn last_index(&self) -> LogIndex {
        (**self).last_index()
    }
    fn last_eterm(&self) -> EpochTerm {
        (**self).last_eterm()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn entry(&self, index: LogIndex) -> Option<LogEntry> {
        (**self).entry(index)
    }
    fn eterm_at(&self, index: LogIndex) -> Option<EpochTerm> {
        (**self).eterm_at(index)
    }
    fn matches(&self, index: LogIndex, eterm: EpochTerm) -> bool {
        (**self).matches(index, eterm)
    }
    fn slice(&self, from: LogIndex, to: LogIndex) -> Vec<LogEntry> {
        (**self).slice(from, to)
    }
    fn tail(&self, from: LogIndex) -> Vec<LogEntry> {
        (**self).tail(from)
    }
    fn append(&mut self, entry: LogEntry) {
        (**self).append(entry);
    }
    fn append_batch(&mut self, entries: Vec<LogEntry>) {
        (**self).append_batch(entries);
    }
    fn truncate_from(&mut self, index: LogIndex) -> Result<usize> {
        (**self).truncate_from(index)
    }
    fn compact_to(&mut self, index: LogIndex, eterm: EpochTerm) -> Result<()> {
        (**self).compact_to(index, eterm)
    }
    fn reset(&mut self, base_index: LogIndex, base_eterm: EpochTerm) {
        (**self).reset(base_index, base_eterm);
    }
    fn save_meta(&mut self, meta: &NodeMeta) {
        (**self).save_meta(meta);
    }
    fn load_meta(&self) -> Option<NodeMeta> {
        (**self).load_meta()
    }
    fn save_snapshot(&mut self, snapshot: &Snapshot, config: &ClusterConfig) {
        (**self).save_snapshot(snapshot, config);
    }
    fn load_snapshot(&self) -> Option<(Snapshot, ClusterConfig)> {
        (**self).load_snapshot()
    }
    fn sync(&mut self) {
        (**self).sync();
    }
    fn sync_count(&self) -> u64 {
        (**self).sync_count()
    }
    fn persistent(&self) -> bool {
        (**self).persistent()
    }
    fn power_cut(&mut self, keep_unsynced: usize) {
        (**self).power_cut(keep_unsynced);
    }
}
