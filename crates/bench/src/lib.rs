//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures (see `benches/`).
//!
//! Each bench target is a `harness = false` binary that drives the
//! deterministic simulator and prints the same rows/series the paper
//! reports. Absolute numbers come from the simulated network (DESIGN.md §2);
//! EXPERIMENTS.md records the shape comparison against the paper.

use bytes::Bytes;
use recraft_core::NodeEvent;
use recraft_kv::KvStore;
use recraft_sim::{Sim, SimConfig, Workload};
use recraft_types::{ClusterConfig, ClusterId, KeyRange, NodeId, RangeSet, SplitSpec};
use std::collections::BTreeMap;

/// One virtual second in simulator time units (µs).
pub const SEC: u64 = 1_000_000;

/// Node ids `1..=n`.
#[must_use]
pub fn node_ids(n: u64) -> Vec<NodeId> {
    (1..=n).map(NodeId).collect()
}

/// A `KvStore` preloaded with `pairs` 512-byte values under uniformly spread
/// keys (the paper's 100 / 1K / 10K KV-pair configurations).
#[must_use]
pub fn preloaded_store(pairs: u64, key_count: u64) -> KvStore {
    use recraft_core::StateMachine;
    let mut store = KvStore::new();
    for i in 0..pairs {
        let key = format!("k{:08}", (i * key_count / pairs.max(1)) % key_count);
        let mut value = format!("preload-{i}-").into_bytes();
        value.resize(512, b'p');
        store.apply(
            recraft_types::LogIndex(i + 1),
            &recraft_kv::KvCmd::Put {
                key: key.into_bytes(),
                value: Bytes::from(value),
            }
            .encode(),
        );
    }
    store
}

/// Boots an `n`-node cluster whose members all hold `store`'s contents.
pub fn boot_preloaded(sim: &mut Sim, cluster: ClusterId, ids: &[NodeId], store: &KvStore) {
    let config =
        ClusterConfig::new(cluster, ids.iter().copied(), RangeSet::full()).expect("valid config");
    for id in ids {
        sim.boot_node_with_store(*id, config.clone(), store.clone());
    }
}

/// An even `ways`-way split plan of the full key space over the members of
/// `base`, allocating `members / ways` nodes per subcluster. Key boundaries
/// are chosen inside the `k%08d` keyspace of `key_count` keys.
#[must_use]
pub fn even_split_spec(
    base: &ClusterConfig,
    ways: usize,
    key_count: u64,
    first_new_cluster: u64,
) -> SplitSpec {
    let members: Vec<NodeId> = base.members().iter().copied().collect();
    let per = members.len() / ways;
    let mut subs = Vec::new();
    let mut cursor = KeyRange::full();
    for w in 0..ways {
        let ids: Vec<NodeId> = members[w * per..(w + 1) * per].to_vec();
        let range = if w + 1 == ways {
            cursor.clone()
        } else {
            let boundary = format!("k{:08}", (w as u64 + 1) * key_count / ways as u64);
            let (lo, hi) = cursor.split_at(boundary.as_bytes()).expect("in range");
            cursor = hi;
            lo
        };
        subs.push(
            ClusterConfig::new(
                ClusterId(first_new_cluster + w as u64),
                ids,
                RangeSet::from(range),
            )
            .expect("valid subcluster"),
        );
    }
    SplitSpec::new(subs, base.members(), base.ranges()).expect("valid split plan")
}

/// Per-cluster committed-command throughput per window, derived from the
/// apply trace (deduplicated by command digest, attributed to the first
/// applying cluster).
#[must_use]
pub fn cluster_throughput_series(
    sim: &Sim,
    window: u64,
    until: u64,
) -> BTreeMap<ClusterId, Vec<u64>> {
    let buckets = (until / window + 1) as usize;
    let mut seen = std::collections::HashSet::new();
    let mut out: BTreeMap<ClusterId, Vec<u64>> = BTreeMap::new();
    for (t, _, ev) in sim.trace() {
        if let NodeEvent::AppliedCommand {
            cluster, digest, ..
        } = ev
        {
            if *t < until && seen.insert(*digest) {
                let series = out.entry(*cluster).or_insert_with(|| vec![0; buckets]);
                series[(*t / window) as usize] += 1;
            }
        }
    }
    out
}

/// A standard simulation for benches: paper-like LAN latencies.
#[must_use]
pub fn bench_sim(seed: u64) -> Sim {
    Sim::new(SimConfig::with_seed(seed))
}

/// The paper's client workload: 512-byte uniform-random puts.
#[must_use]
pub fn put_workload(key_count: u64) -> Workload {
    Workload {
        key_count,
        value_size: 512,
        get_ratio: 0.0,
        ..Workload::default()
    }
}

/// A read-heavy workload for the ReadIndex / log-read comparison benches.
#[must_use]
pub fn read_workload(key_count: u64, get_ratio: f64, reads_via_log: bool) -> Workload {
    Workload {
        key_count,
        value_size: 512,
        get_ratio,
        reads_via_log,
        ..Workload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloaded_store_sizes() {
        let s = preloaded_store(100, 10_000);
        assert_eq!(s.len(), 100);
        assert!(s.data_size() > 100 * 512);
    }

    #[test]
    fn even_split_spec_shapes() {
        let base = ClusterConfig::new(ClusterId(1), node_ids(9), RangeSet::full()).unwrap();
        let spec = even_split_spec(&base, 3, 10_000, 10);
        assert_eq!(spec.subclusters().len(), 3);
        assert!(spec.subclusters().iter().all(|c| c.len() == 3));
        // Ranges partition the keyspace.
        for key in [b"k00000000".as_slice(), b"k00004000", b"k00009999"] {
            assert_eq!(
                spec.subclusters()
                    .iter()
                    .filter(|c| c.ranges().contains(key))
                    .count(),
                1
            );
        }
    }
}
