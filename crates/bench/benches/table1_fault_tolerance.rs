//! Table I: the minimum number of node failures that completely stop a
//! split or merge, for ReCraft's three phases and for the TC baseline with
//! a non-replicated / replicated cluster manager.
//!
//! The analytic table reproduces the paper's formulas; the empirical section
//! injects exactly-`f` and `f+1` crashes into live operations and reports
//! whether they complete.
//!
//! Run with: `cargo bench -p recraft-bench --bench table1_fault_tolerance`

use recraft_bench::{bench_sim, even_split_spec, node_ids, put_workload, SEC};
use recraft_net::AdminCmd;
use recraft_sim::Action;
use recraft_types::{
    ClusterConfig, ClusterId, KeyRange, MergeParticipant, MergeTx, NodeId, RangeSet, TxId,
};

const KEYS: u64 = 10_000;

fn analytic() {
    println!("--- Table I (analytic): minimum failures to stop the operation ---");
    println!("(uniform subcluster size 3 => f_sub = 1; N-way from a 3N-node cluster)\n");
    println!(
        "{:>6} {:>6} | {:>10} {:>12} {:>10} | {:>6} {:>9}",
        "op", "N-way", "RC-phase1", "RC-phase2", "RC-phase3", "TC-CM", "TC-CMrepl"
    );
    for n in [2u64, 3] {
        let n_old = 3 * n;
        let f_old = n_old as usize - recraft_types::config::majority(n_old as usize); // f of C_old
        let f_sub = 1; // 3-node subclusters
        let f_cm = 1; // 3-node replicated CM
        println!(
            "{:>6} {:>6} | {:>10} {:>12} {:>10} | {:>6} {:>9}",
            "split",
            n,
            f_old + 1,
            n * (f_sub + 1), // all N subclusters must fail
            "-".to_string(),
            1,
            f_cm + 1,
        );
        println!(
            "{:>6} {:>6} | {:>10} {:>12} {:>10} | {:>6} {:>9}",
            "merge",
            n,
            f_sub + 1,
            f_sub + 1,
            f_sub + 1,
            1,
            f_cm + 1,
        );
    }
    println!();
}

/// Runs a 2-way split of a 6-node cluster with `kill` follower crashes
/// injected *before* the operation begins (the paper's phase-1 analysis).
/// Returns whether the split completed within the deadline.
fn split_with_crashes(kill: usize) -> bool {
    let mut sim = bench_sim(0x7A81 + kill as u64);
    let src = ClusterId(1);
    sim.boot_cluster(src, &node_ids(6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(4, put_workload(KEYS));
    sim.run_for(2 * SEC);
    let leader = sim.leader_of(src).unwrap();
    // Kill followers (killing the leader is also tolerated via re-election;
    // followers make `f` exact for the phase-1 count).
    let victims: Vec<NodeId> = node_ids(6)
        .into_iter()
        .filter(|n| *n != leader)
        .take(kill)
        .collect();
    let now = sim.time();
    for v in &victims {
        sim.schedule_action(now, Action::Crash(*v));
    }
    sim.run_for(SEC);
    let base = sim.node(leader).unwrap().config().clone();
    let spec = even_split_spec(&base, 2, KEYS, 10);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_for(30 * SEC);
    let done = (0..2).all(|w| {
        sim.nodes()
            .any(|n| n.cluster() == ClusterId(10 + w) && n.current_eterm().epoch() >= 1)
    });
    sim.check_invariants();
    done
}

/// Runs a 2-cluster merge while crashing `kill_per_sub` nodes in one
/// participant subcluster. Returns whether the merge completed.
fn merge_with_crashes(kill_in_one_sub: usize) -> bool {
    let mut sim = bench_sim(0x8A81 + kill_in_one_sub as u64);
    let (lo, hi) = KeyRange::full().split_at(b"k00005000").unwrap();
    let c10 = ClusterConfig::new(ClusterId(10), node_ids(3), RangeSet::from(lo)).unwrap();
    let ids_b: Vec<NodeId> = (4..=6).map(NodeId).collect();
    let c11 = ClusterConfig::new(ClusterId(11), ids_b.iter().copied(), RangeSet::from(hi)).unwrap();
    for id in node_ids(3) {
        sim.boot_node_with_store(id, c10.clone(), recraft_kv::KvStore::new());
    }
    for id in &ids_b {
        sim.boot_node_with_store(*id, c11.clone(), recraft_kv::KvStore::new());
    }
    sim.run_until_leader(ClusterId(10));
    sim.run_until_leader(ClusterId(11));
    sim.run_for(SEC);
    let tx = MergeTx {
        id: TxId(5),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: node_ids(3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids_b.iter().copied().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    // Crash nodes of the non-coordinating subcluster before the 2PC starts
    // (the paper's per-phase analysis: any 2PC phase needs every subcluster
    // quorum alive).
    let now = sim.time();
    for id in ids_b.iter().take(kill_in_one_sub) {
        sim.schedule_action(now, Action::Crash(*id));
    }
    sim.run_for(SEC);
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_for(40 * SEC);
    let done = sim.nodes().any(|n| n.cluster() == ClusterId(20));
    sim.check_invariants();
    done
}

fn main() {
    analytic();

    println!("--- Empirical fault injection (6-node 2-way split, f_old = 2) ---");
    for kill in [1usize, 2, 3] {
        let ok = split_with_crashes(kill);
        println!(
            "  split with {kill} crashed node(s): {}",
            if ok { "COMPLETED" } else { "stalled" }
        );
    }
    println!("  (paper: the split tolerates f_old = 2 failures; f_old + 1 = 3 stop phase 1)\n");

    println!("--- Empirical fault injection (2 x 3-node merge, f_sub = 1) ---");
    for kill in [1usize, 2] {
        let ok = merge_with_crashes(kill);
        println!(
            "  merge with {kill} crashed node(s) in one subcluster: {}",
            if ok { "COMPLETED" } else { "stalled" }
        );
    }
    println!("  (paper: the merge tolerates f_sub = 1 per subcluster; f_sub + 1 = 2 stop it)\n");

    println!("--- TC baseline: the cluster manager is a single point of failure ---");
    {
        use recraft_tc::{tc_split, CmFailure, TcSubcluster};
        let mut sim = bench_sim(0xDEAD);
        let src = ClusterId(1);
        sim.boot_cluster(src, &node_ids(6), RangeSet::full());
        sim.run_until_leader(src);
        sim.run_for(SEC);
        let base = sim
            .node(sim.leader_of(src).unwrap())
            .unwrap()
            .config()
            .clone();
        let spec = even_split_spec(&base, 2, KEYS, 10);
        let retained = spec.subclusters()[0].ranges().clone();
        let outgoing: Vec<TcSubcluster> = spec.subclusters()[1..]
            .iter()
            .map(|c| TcSubcluster {
                cluster: c.id(),
                members: c.members().iter().copied().collect(),
                ranges: c.ranges().clone(),
            })
            .collect();
        let report = tc_split(&mut sim, src, retained, &outgoing, CmFailure::AfterPhase1);
        println!(
            "  TC split with CM crash after phase 1: completed = {} (nodes stranded outside any cluster)",
            report.completed
        );
        println!("  (a single CM failure stops TC; ReCraft has no such component)");
    }
}
