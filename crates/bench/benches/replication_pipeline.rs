//! Replication-pipeline throughput: batch size × in-flight depth × storage
//! backend.
//!
//! The sweep measures committed-entries/sec at leader saturation for the
//! three throughput levers this repo's hot path now exposes:
//!
//! * `max_batch_entries` — how many backlogged entries coalesce into one
//!   AppendEntries frame (and one group-commit WAL record on the follower);
//! * `max_inflight` — how many such frames the leader streams per follower
//!   before waiting for an acknowledgement;
//! * the storage backend — `mem` (no durability cost) vs `wal` (every
//!   `take_outputs` barrier group-commits the round's appends).
//!
//! The `(batch=1, inflight=1)` row is the lockstep baseline: one entry per
//! round trip, the defaults-off configuration. The acceptance bar for the
//! pipelined engine is ≥2× committed-entries/sec over that baseline on the
//! wal backend; the run asserts it.
//!
//! Run with: `cargo bench -p recraft-bench --bench replication_pipeline`
//! (`BENCH_SMOKE=1` shrinks the measurement window for CI smoke runs).
//! A machine-readable summary lands in
//! `target/bench-summaries/BENCH_replication_pipeline.json` so the perf
//! trajectory accumulates across CI runs.

use recraft_bench::{node_ids, SEC};
use recraft_core::PipelineConfig;
use recraft_sim::{Backend, Sim, SimConfig, Workload};
use recraft_types::{ClusterId, RangeSet};
use std::io::Write;

/// One measured configuration.
struct Point {
    backend: &'static str,
    batch: usize,
    inflight: usize,
    kops: f64,
    mean_batch: f64,
    max_depth: usize,
    /// Group-commit sync barriers per committed entry per node — well below
    /// 1.0 when batching amortizes the WAL fsync (always 0 on `mem`).
    sync_per_entry: f64,
}

struct PointResult {
    kops: f64,
    mean_batch: f64,
    max_depth: usize,
    sync_per_entry: f64,
}

fn run_point(backend: Backend, pipeline: PipelineConfig, measure: u64) -> PointResult {
    let seed = 0x51BE ^ (pipeline.max_inflight as u64) << 8 ^ pipeline.max_batch_entries as u64;
    let cfg = SimConfig::with_seed(seed)
        .with_backend(backend)
        .with_pipeline(pipeline);
    let mut sim = Sim::new(cfg);
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &node_ids(3), RangeSet::full());
    sim.run_until_leader(cluster);
    // Open-loop writers: each session keeps a window of proposals in flight,
    // so the leader sees a standing backlog and batching/pipelining engage.
    // Saturation is where those levers pay.
    sim.add_clients(
        64,
        Workload {
            key_count: 10_000,
            value_size: 512,
            get_ratio: 0.0,
            pipeline: 8,
            ..Workload::default()
        },
    );
    sim.run_for(2 * SEC); // warmup
    let from = sim.time();
    sim.run_for(measure);
    let to = sim.time();
    sim.check_invariants();
    sim.check_linearizability();
    let ops = sim.metrics().completed_between(from, to);
    let kops = ops as f64 / (measure as f64 / SEC as f64) / 1000.0;
    let mean_batch = sim.metrics().mean_batch_size().unwrap_or(0.0);
    let (_, max_depth) = sim.metrics().pipeline_maxima();
    // Whole-run fsync amortization: group-commit barriers per committed
    // entry per node (each of the 3 nodes persists every entry once).
    let syncs: u64 = sim.nodes().map(|n| n.log().sync_count()).sum();
    let committed = sim.nodes().map(|n| n.commit_index().0).max().unwrap_or(0);
    let node_count = sim.nodes().count() as f64;
    let sync_per_entry = if committed > 0 {
        syncs as f64 / (committed as f64 * node_count)
    } else {
        0.0
    };
    PointResult {
        kops,
        mean_batch,
        max_depth,
        sync_per_entry,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let measure = if smoke { 2 * SEC } else { 6 * SEC };
    println!("=== Replication pipeline: committed entries/sec at saturation ===");
    println!(
        "    (3 nodes, 64 open-loop write clients x window 8, 512 B values{})\n",
        if smoke { ", smoke window" } else { "" }
    );
    println!(
        "{:>4} {:>6} {:>9} | {:>12} {:>11} {:>10} {:>10} | {:>8}",
        "wal?",
        "batch",
        "inflight",
        "K entries/s",
        "mean batch",
        "max depth",
        "sync/entry",
        "speedup"
    );
    let sweep: &[(usize, usize)] = if smoke {
        &[(1, 1), (128, 64)]
    } else {
        &[(1, 1), (16, 1), (1, 16), (16, 16), (128, 64)]
    };
    let mut points: Vec<Point> = Vec::new();
    let mut wal_speedup = 0.0f64;
    let mut saturated_mean_batch = 0.0f64;
    let saturated = *sweep.last().expect("non-empty sweep");
    for backend in [Backend::Mem, Backend::Wal] {
        let name = match backend {
            Backend::Mem => "mem",
            Backend::Wal => "wal",
        };
        let mut baseline = None;
        for &(batch, inflight) in sweep {
            let pipeline = PipelineConfig {
                max_inflight: inflight,
                max_batch_entries: batch,
                max_batch_bytes: 1 << 20,
            };
            let r = run_point(backend, pipeline, measure);
            let base = *baseline.get_or_insert(r.kops);
            let speedup = if base > 0.0 { r.kops / base } else { 0.0 };
            if backend == Backend::Wal {
                wal_speedup = wal_speedup.max(speedup);
            }
            if (batch, inflight) == saturated {
                saturated_mean_batch = saturated_mean_batch.max(r.mean_batch);
            }
            println!(
                "{name:>4} {batch:>6} {inflight:>9} | {:>12.2} {:>11.2} {:>10} {:>10.3} | \
                 {speedup:>7.2}x",
                r.kops, r.mean_batch, r.max_depth, r.sync_per_entry
            );
            points.push(Point {
                backend: name,
                batch,
                inflight,
                kops: r.kops,
                mean_batch: r.mean_batch,
                max_depth: r.max_depth,
                sync_per_entry: r.sync_per_entry,
            });
        }
    }
    println!(
        "\nBatched+pipelined vs lockstep on the wal backend: {wal_speedup:.2}x \
         (bar: >= 2.0x); mean batch at saturation: {saturated_mean_batch:.2} (bar: > 1.0)"
    );
    write_summary(&points).expect("write bench summary");
    assert!(
        wal_speedup >= 2.0,
        "pipelined replication must clear 2x over lockstep on wal, got {wal_speedup:.2}x"
    );
    assert!(
        saturated_mean_batch > 1.0,
        "open-loop saturation must engage batching (mean batch > 1.0), \
         got {saturated_mean_batch:.2}"
    );
}

/// Writes the JSON summary CI uploads as the perf-trajectory artifact.
fn write_summary(points: &[Point]) -> std::io::Result<()> {
    // Benches run with the package as CWD; anchor on the manifest so the
    // summary lands in the workspace-level target dir CI uploads from.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-summaries");
    let dir = dir.as_path();
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join("BENCH_replication_pipeline.json"))?;
    writeln!(
        f,
        "{{\n  \"bench\": \"replication_pipeline\",\n  \"points\": ["
    )?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"backend\": \"{}\", \"batch\": {}, \"inflight\": {}, \
             \"kops\": {:.3}, \"mean_batch\": {:.2}, \"max_depth\": {}, \
             \"sync_per_entry\": {:.4}}}{comma}",
            p.backend, p.batch, p.inflight, p.kops, p.mean_batch, p.max_depth, p.sync_per_entry
        )?;
    }
    writeln!(f, "  ]\n}}")?;
    Ok(())
}
