//! Figure 5: the number of additional votes ReCraft requires during the
//! intermediate steps of a membership change, compared to the best and
//! worst cases of the joint consensus, over cluster sizes 2..=9.
//!
//! Run with: `cargo bench -p recraft-bench --bench fig5_votes`

use recraft_core::votes::{
    ar_rpc_steps, fig5_matrix, jc_best_votes, jc_steps, jc_worst_votes, Plan,
};

const LO: usize = 2;
const HI: usize = 9;

fn print_matrix(title: &str, m: &[Vec<i64>]) {
    println!("{title}");
    print!("  Cold\\Cnew |");
    for n_new in LO..=HI {
        print!("{n_new:>4}");
    }
    println!();
    println!("  ----------+{}", "----".repeat(HI - LO + 1));
    for (i, row) in m.iter().enumerate() {
        print!("  {:>9} |", LO + i);
        for v in row {
            print!("{v:>4}");
        }
        println!();
    }
    println!();
}

fn main() {
    println!("=== Figure 5: ReCraft extra votes vs joint consensus ===\n");
    println!("cell = (ReCraft max intermediate quorum) - (JC votes); diagonal = no change\n");
    print_matrix(
        "Compared to JC BEST cases (votes of shared members arrive first):",
        &fig5_matrix(LO, HI, false),
    );
    print_matrix(
        "Compared to JC WORST cases (votes of new-only members arrive first):",
        &fig5_matrix(LO, HI, true),
    );

    println!("Reference vote counts and consensus steps:");
    println!(
        "  {:>5} {:>5} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
        "Cold", "Cnew", "RC-votes", "JC-best", "JC-worst", "RC-steps", "JC-steps", "AR-steps"
    );
    for n_old in LO..=HI {
        for n_new in LO..=HI {
            if n_old == n_new {
                continue;
            }
            let plan = Plan::new(n_old, n_new);
            println!(
                "  {:>5} {:>5} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
                n_old,
                n_new,
                plan.max_intermediate_votes(),
                jc_best_votes(n_old, n_new),
                jc_worst_votes(n_old, n_new),
                plan.consensus_steps(),
                jc_steps(n_old, n_new),
                ar_rpc_steps(n_old, n_new),
            );
        }
    }

    // The paper's headline claims, asserted.
    assert!(
        (LO..HI).all(|n| Plan::new(n, n + 1).consensus_steps() == 1),
        "one-node additions are single-step"
    );
    assert_eq!(
        Plan::new(5, 2).consensus_steps(),
        3,
        "5->2 costs one extra step"
    );
    for n_old in LO..=HI {
        for n_new in LO..=HI {
            if n_old != n_new {
                let rc = Plan::new(n_old, n_new).max_intermediate_votes() as i64;
                assert!(rc <= jc_worst_votes(n_old, n_new) as i64);
            }
        }
    }
    println!("\nchecks: ReCraft <= JC worst case everywhere; 5->2 needs one extra step  [OK]");
}
