//! Fleet scale on a fixed thread budget: hundreds of ranges over loopback
//! TCP, hosted by the sharded driver runtime instead of thread-per-node.
//!
//! Boots a 128-range (64 in smoke), replication-3 `wal` fleet — 384 raft
//! nodes — on a worker pool sized to the host's cores, then runs the full
//! autonomy loop against it: hot-range clients concentrate load on the
//! first range until the controller splits it (staffing joiners from the
//! runtime), a follower of the new child is killed and restarted from its
//! WAL mid-campaign, and the idle fleet merges the children back down to
//! the boot range count. A second, zipfian wave then spreads power-law
//! load across the whole keyspace while the control plane's seat
//! rebalancer migrates hot shards between workers. The run asserts its own
//! acceptance bars: every client finishes and confirms exactly-once
//! (including any merge-burned writes recovered by reissue), at least one
//! split and one merge complete, cross-worker replication actually
//! multiplexes (mux batch counters nonzero), the idle fleet wakes at
//! least 10x less often than the retired 500 µs sweep loop did, the
//! post-rebalance max/mean worker load ratio sits at or below 2.0, and
//! the whole process stays within `2 x cores + small constant` OS threads
//! at peak — the number thread-per-node could never meet at this range
//! count.
//!
//! Run with: `cargo bench -p recraft-bench --bench mux_fleet`
//! (`BENCH_SMOKE=1` halves the range count and shortens the load for CI
//! smoke). A machine-readable summary lands in
//! `target/bench-summaries/BENCH_mux_fleet.json`.

use recraft_cluster::{
    os_thread_count, ClientOptions, Cluster, ControlOptions, ControlPlane, FleetSpec, FleetView,
    HarnessBackend,
};
use recraft_fleet::FleetConfig;
use recraft_types::{ClusterId, SessionId};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CLIENTS: u64 = 8;

struct Scale {
    ranges: usize,
    replication: usize,
    ops_per_client: u64,
}

struct Outcome {
    nodes: usize,
    workers: usize,
    cores: usize,
    threads_baseline: usize,
    threads_boot: usize,
    threads_peak: usize,
    total_ops: u64,
    ops_per_ms: f64,
    wall_ms: u128,
    splits: u64,
    merges: u64,
    staffed: u64,
    reaped: u64,
    wire_batches: u64,
    wire_envelopes: u64,
    mean_wire_batch: f64,
    idle_wakeups_per_sec: f64,
    shard_imbalance: f64,
    seat_migrations: u64,
    reissued: u64,
}

/// What the retired sweep loop cost at idle: every worker re-polled its
/// whole shard each `IDLE_PARK` (500 µs) park, wakeups with zero work to
/// do. The readiness loop must beat this by at least 10x.
const SWEEP_BASELINE_WAKEUPS_PER_SEC: f64 = 2_000.0;

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + timeout;
    while Instant::now() < end {
        if f() {
            return true;
        }
        thread::sleep(Duration::from_millis(50));
    }
    f()
}

fn run(scale: &Scale) -> Outcome {
    let cores = thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads_baseline = os_thread_count().expect("/proc thread count");

    let mut fleet = FleetSpec::new(scale.ranges, scale.replication, HarnessBackend::Wal);
    fleet.fsync = false;
    // At least two workers so worker-pair multiplexing engages even on a
    // single-core host; otherwise the pool tracks the machine.
    fleet.workers = Some(cores.max(2));
    // Size election timeouts to the deployment: a worker round visits every
    // node in its shard, so with hundreds of nodes per worker the timeout
    // has to dominate a full round plus scheduling jitter, not just the
    // microsecond loopback broadcast.
    fleet.timing.election_timeout_min = 1_500_000;
    fleet.timing.election_timeout_max = 3_000_000;
    fleet.timing.heartbeat_interval = 300_000;
    let cluster = Arc::new(Cluster::launch_fleet(&fleet));
    let workers = cluster.worker_count();
    for r in 1..=scale.ranges {
        assert!(
            cluster
                .wait_for_leader_of(ClusterId(r as u64), Duration::from_secs(120))
                .is_some(),
            "boot range {r} never led:\n{}",
            cluster.debug_dump()
        );
    }
    // The fleet-attributable thread bill: the worker pool, nothing per-node.
    let threads_boot = os_thread_count().expect("/proc thread count");
    assert!(
        threads_boot.saturating_sub(threads_baseline) <= workers + 2,
        "{} nodes cost {} extra threads on a {workers}-worker pool",
        scale.ranges * scale.replication,
        threads_boot.saturating_sub(threads_baseline)
    );

    // Idle-wakeup bar, measured before any load or control plane exists:
    // every seat is quiescent (leaders heartbeat at 300 ms; elections are
    // settled), so the readiness loop should wake only on deadlines. A
    // 10x drop from the sweep loop's park cadence is the acceptance floor;
    // in practice deadline-driven waits land orders of magnitude lower.
    let idle_window = Duration::from_secs(2);
    let w0 = cluster.wire_stats();
    thread::sleep(idle_window);
    let w1 = cluster.wire_stats();
    let idle_wakeups_per_sec =
        (w1.idle_wakeups - w0.idle_wakeups) as f64 / idle_window.as_secs_f64();
    let idle_ceiling = workers as f64 * SWEEP_BASELINE_WAKEUPS_PER_SEC / 10.0;
    assert!(
        idle_wakeups_per_sec <= idle_ceiling,
        "idle fleet woke {idle_wakeups_per_sec:.0}/s — less than a 10x drop from the \
         {SWEEP_BASELINE_WAKEUPS_PER_SEC:.0}/s-per-worker sweep baseline ({workers} workers)"
    );

    // Peak sampler: one extra thread recording the process-wide high-water
    // mark while the campaign runs.
    let peak = Arc::new(AtomicUsize::new(threads_boot));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let (peak, stop) = (Arc::clone(&peak), Arc::clone(&stop));
        thread::Builder::new()
            .name("thread-peak".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(n) = os_thread_count() {
                        peak.fetch_max(n, Ordering::Relaxed);
                    }
                    thread::sleep(Duration::from_millis(50));
                }
            })
            .expect("spawn sampler")
    };

    let view = FleetView::new(cluster.net());
    let plane = ControlPlane::spawn(
        Arc::clone(&cluster),
        Arc::clone(&view),
        ControlOptions {
            fleet: FleetConfig {
                split_ops: 60,
                merge_ops: 8,
                split_bytes: 64 << 20,
                merge_bytes: 16 << 20,
                cooldown_us: 2_000_000,
                stall_us: 600_000_000,
                max_inflight: 1,
                replication: scale.replication,
                // Floor at the boot count: the only merges available are the
                // ones that undo the campaign's splits, so the bench proves
                // both directions without collapsing the whole fleet.
                min_ranges: scale.ranges,
                max_ranges: scale.ranges + 2,
            },
            interval: Duration::from_millis(200),
            cmd_deadline: Duration::from_secs(20),
            next_cluster: scale.ranges as u64 + 1,
            ..ControlOptions::default()
        },
    );

    // Hot-range load: every key sits below the first range boundary
    // (`key_space / ranges` keys in), so one range carries the whole fleet's
    // traffic and is the one the controller splits.
    let opts = ClientOptions {
        ops: scale.ops_per_client,
        window: 4,
        value_size: 64,
        key_count: 64,
        read_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(600),
        view: Some(Arc::clone(&view)),
        ..ClientOptions::default()
    };
    let started = Instant::now();
    let load = {
        let c = Arc::clone(&cluster);
        let opts = opts.clone();
        thread::Builder::new()
            .name("fleet-load".into())
            .spawn(move || c.run_clients(CLIENTS, &opts))
            .expect("spawn load thread")
    };

    // The split: child clusters appear and lead. Capture the first child's
    // leader immediately — the kill below must land while it exists.
    let child = ClusterId(scale.ranges as u64 + 1);
    let leader = cluster
        .wait_for_leader_of(child, Duration::from_secs(180))
        .unwrap_or_else(|| panic!("child {child:?} never led:\n{}", cluster.debug_dump()));

    // Kill a follower of the child mid-load, then reboot it from its WAL
    // onto a fresh shard seat and port — the campaign must ride through it.
    if let Some(victim) = cluster
        .members_of(child)
        .keys()
        .copied()
        .find(|n| *n != leader)
    {
        assert!(cluster.kill(victim), "victim {victim:?} was not running");
        thread::sleep(Duration::from_millis(700));
        cluster.restart(victim);
    }

    let fleet_run = load.join().expect("client threads");
    let wall_ms = started.elapsed().as_millis();
    let unfinished = fleet_run.reports.iter().filter(|r| !r.completed).count();
    assert_eq!(
        unfinished,
        0,
        "{unfinished} of {CLIENTS} clients missed the deadline:\n{}",
        cluster.debug_dump()
    );
    let total_ops = CLIENTS * scale.ops_per_client;
    assert_eq!(fleet_run.confirmed_ops(), total_ops);

    // The merge: idle, the controller folds the children back down to the
    // boot range count and the plane reaps the retirements.
    assert!(
        wait_until(Duration::from_secs(180), || view
            .with_directory(|d| d.len() == scale.ranges)),
        "fleet never merged back to {} ranges (directory v{}):\n{}",
        scale.ranges,
        view.version(),
        cluster.debug_dump()
    );

    // Phase 2 — the zipfian campaign: a second wave (fresh sessions)
    // spreads power-law-skewed load across the whole keyspace, so every
    // range sees traffic but the low ranges run hot. The control plane is
    // still up: its rebalancer differences the per-seat step/byte counters
    // every round and migrates hot seats off overloaded workers while the
    // wave runs.
    let zipf_opts = ClientOptions {
        ops: scale.ops_per_client / 2,
        window: 4,
        value_size: 64,
        key_count: 10_000,
        key_skew: 2.0,
        read_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(600),
        session_base: 100,
        view: Some(Arc::clone(&view)),
    };
    let zipf_run = cluster.run_clients(CLIENTS, &zipf_opts);
    assert!(
        zipf_run.all_completed(),
        "zipfian wave incomplete: {:?}\n{}",
        zipf_run.reports,
        cluster.debug_dump()
    );

    let report = plane.stop();
    let (splits, merges, staffed) = report.planned;
    assert!(
        splits >= 1 && merges >= 1,
        "campaign must complete a split and a merge: {report:?}"
    );
    // Post-rebalance balance bar: the last loaded round the rebalancer
    // measured (its moves from earlier rounds already applied) must sit at
    // or below a 2.0 max/mean worker-load ratio.
    assert!(
        report.imbalance > 0.0,
        "rebalancer never measured a loaded round: {report:?}"
    );
    assert!(
        report.imbalance <= 2.0,
        "post-rebalance shard load ratio {:.2} above the 2.0 bar: {report:?}",
        report.imbalance
    );

    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");
    let threads_peak = peak.load(Ordering::Relaxed);
    // Everything in flight at once: workers + clients + load/plane/sampler
    // bookkeeping. Still a fixed budget, never a function of range count.
    assert!(
        threads_peak.saturating_sub(threads_baseline) <= 2 * cores + CLIENTS as usize + 8,
        "peak {} threads over a {threads_baseline} baseline on {cores} cores",
        threads_peak
    );

    let wire = cluster.wire_stats();
    assert!(wire.batches > 0, "no mux batches on a multi-worker fleet");

    // Exactly-once across the surviving fleet. A session's ops can straddle
    // the split children, and the merge that restores the range floor is
    // free to fold a child into a neighbor rather than its sibling — so a
    // session's tail may live in any surviving cluster. No table can ever
    // exceed the client's final wire sequence (dedup forbids it), so the
    // fleet-wide max reaching each client's reported `last_seq` — ops plus
    // any merge-burned reissues — is the exactly-once witness.
    let nodes = Arc::try_unwrap(cluster)
        .unwrap_or_else(|_| panic!("cluster handles still outstanding"))
        .shutdown();
    for c in 0..CLIENTS {
        let last = nodes
            .iter()
            .filter_map(|n| n.sessions().last_seq(SessionId(c)))
            .max();
        let expected = fleet_run.last_seq_of(c);
        assert_eq!(last, expected, "session {c}: last_seq {last:?}");
        // The zipfian wave's sessions (offset by its session_base).
        let last2 = nodes
            .iter()
            .filter_map(|n| n.sessions().last_seq(SessionId(100 + c)))
            .max();
        let expected2 = zipf_run.last_seq_of(c);
        assert_eq!(last2, expected2, "zipf session {c}: last_seq {last2:?}");
    }

    Outcome {
        nodes: scale.ranges * scale.replication,
        workers,
        cores,
        threads_baseline,
        threads_boot,
        threads_peak,
        total_ops,
        ops_per_ms: total_ops as f64 / wall_ms.max(1) as f64,
        wall_ms,
        splits,
        merges,
        staffed,
        reaped: report.reaped,
        wire_batches: wire.batches,
        wire_envelopes: wire.batched_envelopes,
        mean_wire_batch: wire.mean_batch(),
        idle_wakeups_per_sec,
        shard_imbalance: report.imbalance,
        seat_migrations: report.migrations,
        reissued: fleet_run
            .reports
            .iter()
            .chain(zipf_run.reports.iter())
            .map(|r| r.reissued)
            .sum(),
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let scale = if smoke {
        Scale {
            ranges: 64,
            replication: 3,
            ops_per_client: 400,
        }
    } else {
        Scale {
            ranges: 128,
            replication: 3,
            ops_per_client: 1_500,
        }
    };
    println!(
        "=== Mux fleet: {} ranges x {} replicas on a fixed worker pool ===",
        scale.ranges, scale.replication
    );
    println!(
        "    ({CLIENTS} hot-range clients x {} ops, wal backend{})\n",
        scale.ops_per_client,
        if smoke { ", smoke scale" } else { "" }
    );
    let o = run(&scale);
    println!(
        "{} nodes on {} workers ({} cores): threads {} -> {} boot -> {} peak",
        o.nodes, o.workers, o.cores, o.threads_baseline, o.threads_boot, o.threads_peak
    );
    println!(
        "{} ops in {} ms ({:.2} ops/ms); splits {}, merges {}, staffed {}, reaped {}",
        o.total_ops, o.wall_ms, o.ops_per_ms, o.splits, o.merges, o.staffed, o.reaped
    );
    println!(
        "wire: {} mux batches carrying {} envelopes ({:.2} envelopes/batch)",
        o.wire_batches, o.wire_envelopes, o.mean_wire_batch
    );
    println!(
        "idle: {:.1} wakeups/s across {} workers (sweep baseline {:.0}/s/worker)",
        o.idle_wakeups_per_sec, o.workers, SWEEP_BASELINE_WAKEUPS_PER_SEC
    );
    println!(
        "rebalance: shard load ratio {:.2} after {} seat migration(s); {} write(s) reissued past burned sequences",
        o.shard_imbalance, o.seat_migrations, o.reissued
    );
    let _ = std::io::stdout().flush();
    write_summary(&scale, &o, smoke).expect("write bench summary");
}

/// Writes the JSON summary CI uploads as the perf-trajectory artifact.
fn write_summary(scale: &Scale, o: &Outcome, smoke: bool) -> std::io::Result<()> {
    // Benches run with the package as CWD; anchor on the manifest so the
    // summary lands in the workspace-level target dir CI uploads from.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-summaries");
    std::fs::create_dir_all(&dir)?;
    let mut f = std::fs::File::create(dir.join("BENCH_mux_fleet.json"))?;
    writeln!(
        f,
        "{{\n  \"bench\": \"mux_fleet\",\n  \"smoke\": {smoke},\n  \
         \"ranges\": {},\n  \"replication\": {},\n  \"nodes\": {},\n  \
         \"clients\": {CLIENTS},\n  \"ops_per_client\": {},\n  \
         \"workers\": {},\n  \"cores\": {},\n  \"threads_baseline\": {},\n  \
         \"threads_boot\": {},\n  \"threads_peak\": {},\n  \
         \"total_ops\": {},\n  \"ops_per_ms\": {:.3},\n  \"wall_ms\": {},\n  \
         \"splits\": {},\n  \"merges\": {},\n  \"staffed\": {},\n  \
         \"reaped\": {},\n  \"wire_batches\": {},\n  \"wire_envelopes\": {},\n  \
         \"mean_wire_batch\": {:.2},\n  \"idle_wakeups_per_sec\": {:.2},\n  \
         \"shard_imbalance\": {:.3},\n  \"seat_migrations\": {},\n  \
         \"reissued\": {}\n}}",
        scale.ranges,
        scale.replication,
        o.nodes,
        scale.ops_per_client,
        o.workers,
        o.cores,
        o.threads_baseline,
        o.threads_boot,
        o.threads_peak,
        o.total_ops,
        o.ops_per_ms,
        o.wall_ms,
        o.splits,
        o.merges,
        o.staffed,
        o.reaped,
        o.wire_batches,
        o.wire_envelopes,
        o.mean_wire_batch,
        o.idle_wakeups_per_sec,
        o.shard_imbalance,
        o.seat_migrations,
        o.reissued
    )?;
    Ok(())
}
