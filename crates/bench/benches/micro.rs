//! Criterion micro-benchmarks of the protocol building blocks: log appends,
//! epoch-term packing, quorum evaluation, configuration derivation, and
//! snapshot encode/merge.
//!
//! Run with: `cargo bench -p recraft-bench --bench micro`

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recraft_core::quorum::QuorumSpec;
use recraft_core::stack::ConfigStack;
use recraft_core::StateMachine;
use recraft_kv::{KvCmd, KvStore};
use recraft_storage::{LogEntry, MemLog};
use recraft_types::{
    ClusterConfig, ClusterId, ConfigChange, EpochTerm, KeyRange, LogIndex, NodeId, RangeSet,
    SplitSpec,
};
use std::collections::BTreeSet;

fn nodes(n: u64) -> BTreeSet<NodeId> {
    (1..=n).map(NodeId).collect()
}

fn bench_log_append(c: &mut Criterion) {
    c.bench_function("memlog_append_compact_4k", |b| {
        b.iter(|| {
            let mut log = MemLog::new();
            for i in 1..=4096u64 {
                log.append(LogEntry::command(
                    LogIndex(i),
                    EpochTerm::new(0, 1),
                    Bytes::from_static(b"0123456789abcdef"),
                ));
            }
            log.compact_to(LogIndex(4096), EpochTerm::new(0, 1))
                .unwrap();
            black_box(log.last_index())
        });
    });
}

fn bench_eterm(c: &mut Criterion) {
    c.bench_function("eterm_pack_compare", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for e in 0..64u32 {
                for t in 0..64u32 {
                    let et = EpochTerm::new(e, t);
                    if et > black_box(EpochTerm::new(31, 31)) {
                        acc ^= et.packed();
                    }
                }
            }
            acc
        });
    });
}

fn bench_quorum(c: &mut Criterion) {
    let joint = QuorumSpec::joint_majorities([nodes(3), nodes(5)].iter());
    let votes = nodes(5);
    c.bench_function("quorum_joint_satisfied", |b| {
        b.iter(|| black_box(joint.satisfied(black_box(&votes))));
    });
}

fn bench_derive(c: &mut Criterion) {
    let base = ClusterConfig::new(ClusterId(1), nodes(9), RangeSet::full()).unwrap();
    let (lo, hi) = KeyRange::full().split_at(b"m").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), (1..=4).map(NodeId), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), (5..=9).map(NodeId), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    let mut stack = ConfigStack::new(base, LogIndex::ZERO);
    stack.push(LogIndex(5), ConfigChange::SplitJoint(spec.clone()));
    stack.push(LogIndex(9), ConfigChange::SplitNew(spec));
    c.bench_function("config_stack_derive_mid_split", |b| {
        b.iter(|| black_box(stack.derive(NodeId(3))));
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let mut store = KvStore::new();
    for i in 0..1000u64 {
        let mut v = vec![b'v'; 512];
        v[0] = (i % 255) as u8;
        store.apply(
            LogIndex(i + 1),
            &KvCmd::Put {
                key: format!("k{i:08}").into_bytes(),
                value: Bytes::from(v),
            }
            .encode(),
        );
    }
    c.bench_function("kv_snapshot_1k_pairs", |b| {
        b.iter(|| black_box(store.snapshot(&RangeSet::full())));
    });
    let (lo, hi) = KeyRange::full().split_at(b"k00000500").unwrap();
    let parts = [
        store.snapshot(&RangeSet::from(lo)),
        store.snapshot(&RangeSet::from(hi)),
    ];
    c.bench_function("kv_restore_merged_1k_pairs", |b| {
        b.iter(|| {
            let mut merged = KvStore::new();
            merged.restore_merged(black_box(&parts)).unwrap();
            black_box(merged.len())
        });
    });
}

criterion_group!(
    benches,
    bench_log_append,
    bench_eterm,
    bench_quorum,
    bench_derive,
    bench_snapshot
);
criterion_main!(benches);
