//! Figure 7: split performance.
//!
//! (a) Throughput timeline of a 6-node cluster splitting into two 3-node
//!     subclusters and a 9-node cluster splitting into three, under heavy
//!     uniform-random puts; the split fires at the 15-second mark (the paper
//!     uses 30 s — halved to keep the bench snappy; the shape is identical).
//! (b) Split latency of ReCraft (two consensus steps, no data migration)
//!     against the TC baseline (member removes + snapshot + restart) for
//!     {2,3}-way splits over stores holding 100 / 1K / 10K KV pairs.
//!
//! Run with: `cargo bench -p recraft-bench --bench fig7_split`

use recraft_bench::{
    bench_sim, boot_preloaded, cluster_throughput_series, even_split_spec, node_ids,
    preloaded_store, put_workload, SEC,
};
use recraft_core::NodeEvent;
use recraft_net::AdminCmd;
use recraft_tc::{tc_split, CmFailure, TcSubcluster};
use recraft_types::{ClusterId, RangeSet};

const KEYS: u64 = 10_000;
const SPLIT_AT: u64 = 15 * SEC;
const END: u64 = 30 * SEC;

fn throughput_timeline(ways: usize) {
    let nodes = 3 * ways as u64;
    println!("--- Fig 7a: {nodes}-node cluster splitting {ways}-way (split at t=15s) ---");
    let mut sim = bench_sim(0x7A + ways as u64);
    let src = ClusterId(1);
    sim.boot_cluster(src, &node_ids(nodes), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(128, put_workload(KEYS));

    // Schedule the split at the mark.
    sim.run_until(SPLIT_AT);
    let leader = sim.leader_of(src).expect("leader");
    let base = sim.node(leader).unwrap().config().clone();
    let spec = even_split_spec(&base, ways, KEYS, 10);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until(END);

    let series = cluster_throughput_series(&sim, SEC, END);
    print!("{:>5}", "t(s)");
    let clusters: Vec<ClusterId> = series.keys().copied().collect();
    for c in &clusters {
        print!("{:>9}", format!("{c}"));
    }
    println!("{:>9}", "total");
    for bucket in 0..(END / SEC) as usize {
        print!("{bucket:>5}");
        let mut total = 0;
        for c in &clusters {
            let v = series[c].get(bucket).copied().unwrap_or(0);
            total += v;
            print!("{v:>9}");
        }
        println!("{total:>9}");
    }
    // Shape check: aggregate throughput after the split exceeds before.
    let before: u64 = (10..14)
        .map(|b| {
            series
                .values()
                .map(|s| s.get(b).copied().unwrap_or(0))
                .sum::<u64>()
        })
        .sum();
    let after: u64 = (25..29)
        .map(|b| {
            series
                .values()
                .map(|s| s.get(b).copied().unwrap_or(0))
                .sum::<u64>()
        })
        .sum();
    println!(
        "aggregate 4s window: before={before} after={after} ({:.2}x)\n",
        after as f64 / before.max(1) as f64
    );
    sim.check_invariants();
}

fn rc_split_latency(ways: usize, pairs: u64) -> f64 {
    let nodes = 3 * ways as u64;
    let mut sim = bench_sim(0x75C + ways as u64 * 100 + pairs);
    let src = ClusterId(1);
    let store = preloaded_store(pairs, KEYS);
    boot_preloaded(&mut sim, src, &node_ids(nodes), &store);
    sim.run_until_leader(src);
    sim.run_for(SEC);
    let leader = sim.leader_of(src).expect("leader");
    let base = sim.node(leader).unwrap().config().clone();
    let spec = even_split_spec(&base, ways, KEYS, 10);
    let t0 = sim.time();
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(60 * SEC, |s| {
        (0..ways as u64).all(|w| s.leader_of(ClusterId(10 + w)).is_some())
    });
    let done = sim
        .last_event(|e| matches!(e, NodeEvent::SplitCompleted { .. }))
        .expect("split completed");
    sim.check_invariants();
    (done - t0) as f64 / 1000.0 // ms
}

fn tc_split_latency(ways: usize, pairs: u64) -> recraft_tc::TcSplitReport {
    let nodes = 3 * ways as u64;
    let mut sim = bench_sim(0x7C + ways as u64 * 100 + pairs);
    let src = ClusterId(1);
    let store = preloaded_store(pairs, KEYS);
    boot_preloaded(&mut sim, src, &node_ids(nodes), &store);
    sim.run_until_leader(src);
    sim.run_for(SEC);
    let base = sim
        .node(sim.leader_of(src).unwrap())
        .unwrap()
        .config()
        .clone();
    // The source keeps the first slice; the outgoing subclusters take the
    // rest (same geometry as the ReCraft split).
    let spec = even_split_spec(&base, ways, KEYS, 10);
    let retained = spec.subclusters()[0].ranges().clone();
    let outgoing: Vec<TcSubcluster> = spec.subclusters()[1..]
        .iter()
        .map(|c| TcSubcluster {
            cluster: c.id(),
            members: c.members().iter().copied().collect(),
            ranges: c.ranges().clone(),
        })
        .collect();
    tc_split(&mut sim, src, retained, &outgoing, CmFailure::None)
}

fn main() {
    throughput_timeline(2);
    throughput_timeline(3);

    println!("--- Fig 7b: split latency (ms), ReCraft vs TC emulation ---");
    println!(
        "{:>8} | {:>9} | {:>10} {:>12} {:>11} {:>9} | {:>6}",
        "config", "RC-split", "TC-remove", "TC-snapshot", "TC-restart", "TC-total", "TC/RC"
    );
    for ways in [2usize, 3] {
        for pairs in [100u64, 1_000, 10_000] {
            let rc = rc_split_latency(ways, pairs);
            let tc = tc_split_latency(ways, pairs);
            println!(
                "{:>8} | {:>9.1} | {:>10.1} {:>12.1} {:>11.1} {:>9.1} | {:>6.1}",
                format!("{}-{}", ways, pairs),
                rc,
                tc.remove_us as f64 / 1000.0,
                tc.snapshot_us as f64 / 1000.0,
                tc.restart_us as f64 / 1000.0,
                tc.total_us() as f64 / 1000.0,
                tc.total_us() as f64 / 1000.0 / rc,
            );
        }
    }
    println!("\npaper shape: RC is near-constant (two commits); TC grows with data size");
}
