//! Figure 8: merge performance.
//!
//! (a) Throughput timeline of two (and three) 3-node clusters merging into
//!     one under light load (2 clients — merging is for underutilized
//!     clusters), merge at the 15-second mark.
//! (b) Merge latency of ReCraft (2PC + snapshot exchange) against the TC
//!     baseline (stop + copy + rejoin) for {2,3} clusters × {100,1K,10K}
//!     KV pairs, with phase breakdown (RC-TX / RC-snapshot vs TC-snapshot /
//!     TC-rejoin).
//!
//! Run with: `cargo bench -p recraft-bench --bench fig8_merge`

use recraft_bench::{bench_sim, preloaded_store, put_workload, SEC};
use recraft_core::NodeEvent;
use recraft_core::StateMachine;
use recraft_net::AdminCmd;
use recraft_tc::{tc_merge, CmFailure};
use recraft_types::{
    ClusterConfig, ClusterId, KeyRange, MergeParticipant, MergeTx, NodeId, RangeSet, TxId,
};

const KEYS: u64 = 10_000;

/// Boots `n` disjoint 3-node clusters partitioning the keyspace, each
/// preloaded with its share of `pairs` KV pairs.
fn boot_disjoint_clusters(
    sim: &mut recraft_sim::Sim,
    n: u64,
    pairs: u64,
) -> Vec<(ClusterId, Vec<NodeId>)> {
    let full = preloaded_store(pairs, KEYS);
    let mut out = Vec::new();
    let mut cursor = KeyRange::full();
    for w in 0..n {
        let range = if w + 1 == n {
            cursor.clone()
        } else {
            let boundary = format!("k{:08}", (w + 1) * KEYS / n);
            let (lo, hi) = cursor.split_at(boundary.as_bytes()).expect("in range");
            cursor = hi;
            lo
        };
        let cluster = ClusterId(10 + w);
        let ids: Vec<NodeId> = (w * 3 + 1..=w * 3 + 3).map(NodeId).collect();
        let ranges = RangeSet::from(range);
        let mut store = recraft_kv::KvStore::new();
        store
            .restore(&full.snapshot(&ranges))
            .expect("slice decodes");
        let config = ClusterConfig::new(cluster, ids.iter().copied(), ranges).unwrap();
        for id in &ids {
            sim.boot_node_with_store(*id, config.clone(), store.clone());
        }
        out.push((cluster, ids));
    }
    out
}

fn merge_tx(clusters: &[(ClusterId, Vec<NodeId>)]) -> MergeTx {
    MergeTx {
        id: TxId(77),
        coordinator: clusters[0].0,
        participants: clusters
            .iter()
            .map(|(c, ids)| MergeParticipant {
                cluster: *c,
                members: ids.iter().copied().collect(),
            })
            .collect(),
        new_cluster: ClusterId(20),
        resume_members: None,
    }
}

fn throughput_timeline(n: u64) {
    println!("--- Fig 8a: {n} x 3-node clusters merging into one (merge at t=15s) ---");
    let mut sim = bench_sim(0x8A + n);
    let clusters = boot_disjoint_clusters(&mut sim, n, 1_000);
    for (c, _) in &clusters {
        sim.run_until_leader(*c);
    }
    sim.add_clients(2, put_workload(KEYS));
    sim.run_until(15 * SEC);
    sim.admin(clusters[0].0, AdminCmd::Merge(merge_tx(&clusters)));
    sim.run_until(30 * SEC);

    let series = recraft_bench::cluster_throughput_series(&sim, SEC, 30 * SEC);
    print!("{:>5}", "t(s)");
    let ids: Vec<ClusterId> = series.keys().copied().collect();
    for c in &ids {
        print!("{:>9}", format!("{c}"));
    }
    println!("{:>9}", "total");
    for bucket in 0..30 {
        print!("{bucket:>5}");
        let mut total = 0;
        for c in &ids {
            let v = series[c].get(bucket).copied().unwrap_or(0);
            total += v;
            print!("{v:>9}");
        }
        println!("{total:>9}");
    }
    // Shape check: the merged cluster serves all traffic at the end.
    assert!(
        sim.leader_of(ClusterId(20)).is_some(),
        "merged cluster has a leader"
    );
    sim.check_invariants();
    println!();
}

struct RcMergeLatency {
    tx_ms: f64,
    snapshot_ms: f64,
}

fn rc_merge_latency(n: u64, pairs: u64) -> RcMergeLatency {
    let mut sim = bench_sim(0x8C + n * 100 + pairs);
    let clusters = boot_disjoint_clusters(&mut sim, n, pairs);
    for (c, _) in &clusters {
        sim.run_until_leader(*c);
    }
    sim.run_for(SEC);
    let t0 = sim.time();
    sim.admin(clusters[0].0, AdminCmd::Merge(merge_tx(&clusters)));
    sim.run_until_pred(120 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    let outcome = sim
        .first_event(|e| matches!(e, NodeEvent::MergeOutcomeCommitted { .. }))
        .expect("outcome committed");
    let resumed = sim
        .last_event(|e| matches!(e, NodeEvent::MergeResumed { .. }))
        .expect("resumed");
    sim.check_invariants();
    RcMergeLatency {
        tx_ms: (outcome - t0) as f64 / 1000.0,
        snapshot_ms: (resumed - outcome) as f64 / 1000.0,
    }
}

fn tc_merge_latency(n: u64, pairs: u64) -> recraft_tc::TcMergeReport {
    let mut sim = bench_sim(0x8D + n * 100 + pairs);
    let clusters = boot_disjoint_clusters(&mut sim, n, pairs);
    for (c, _) in &clusters {
        sim.run_until_leader(*c);
    }
    sim.run_for(SEC);
    let dst = clusters[0].0;
    let sources: Vec<ClusterId> = clusters[1..].iter().map(|(c, _)| *c).collect();
    tc_merge(&mut sim, dst, &sources, CmFailure::None)
}

fn main() {
    throughput_timeline(2);
    throughput_timeline(3);

    println!("--- Fig 8b: merge latency (ms), ReCraft vs TC emulation ---");
    println!(
        "{:>8} | {:>8} {:>11} {:>9} | {:>11} {:>10} {:>9} | {:>6}",
        "config",
        "RC-TX",
        "RC-snapshot",
        "RC-total",
        "TC-snapshot",
        "TC-rejoin",
        "TC-total",
        "TC/RC"
    );
    for n in [2u64, 3] {
        for pairs in [100u64, 1_000, 10_000] {
            let rc = rc_merge_latency(n, pairs);
            let tc = tc_merge_latency(n, pairs);
            let rc_total = rc.tx_ms + rc.snapshot_ms;
            println!(
                "{:>8} | {:>8.1} {:>11.1} {:>9.1} | {:>11.1} {:>10.1} {:>9.1} | {:>6.1}",
                format!("{}-{}", n, pairs),
                rc.tx_ms,
                rc.snapshot_ms,
                rc_total,
                tc.snapshot_us as f64 / 1000.0,
                tc.rejoin_us as f64 / 1000.0,
                tc.total_us() as f64 / 1000.0,
                tc.total_us() as f64 / 1000.0 / rc_total,
            );
        }
    }
    println!("\npaper shape: RC-TX is near-constant; data movement dominates both, TC blocks more");
}
