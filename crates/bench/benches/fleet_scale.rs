//! Fleet autonomy under skew: the controller reshaping a multi-range
//! deployment while zipfian clients hammer it.
//!
//! Sweeps the zipfian skew exponent across a uniform baseline (`s = 0`),
//! YCSB-style skew (`s = 0.99`), and a hotspot-heavy tail (`s = 1.3`),
//! each over the same booted fleet inside the deterministic simulator.
//! Per point it reports client throughput in ops per virtual second, how
//! many autonomous reconfigurations (splits + merges) the controller
//! completed, the most it had in flight at once, and the directory-
//! staleness cost: the fraction of completed operations that first bounced
//! off a node that no longer owned the key (`Redirect` outcomes per
//! completed op). The full safety checks — linearizability witness and the
//! exactly-once session contract — run on every point, so the numbers are
//! only ever produced by correct executions.
//!
//! Run with: `cargo bench -p recraft-bench --bench fleet_scale`
//! (`BENCH_SMOKE=1` shrinks the fleet and the run window for CI smoke).
//! A machine-readable summary lands in
//! `target/bench-summaries/BENCH_fleet_scale.json`.

use recraft_cluster::os_thread_count;
use recraft_sim::{FleetConfig, FleetHarness, SimConfig, Workload};
use std::io::Write;

const SEC: u64 = 1_000_000;
/// Controller sampling interval (µs): load thresholds are per this window.
const INTERVAL: u64 = 500_000;

/// The skew sweep: uniform, YCSB-default, and hotspot-heavy.
const SKEWS: &[f64] = &[0.0, 0.99, 1.3];

struct Scale {
    ranges: usize,
    key_count: u64,
    clients: u64,
    run_us: u64,
}

struct Point {
    zipf_s: f64,
    completed_ops: usize,
    ops_per_vsec: f64,
    splits: u64,
    merges: u64,
    max_overlap: usize,
    ranges_end: usize,
    redirects: u64,
    redirect_rate: f64,
    wall_ms: u128,
    peak_threads: usize,
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        // Sized so evenly-spread load sits below the trigger: only skew
        // concentrates enough traffic on one range to make the controller
        // act. (The sim completes roughly 2-5k ops per interval fleet-wide;
        // uniform load divides that across every range, a zipfian hot spot
        // lands most of it on one.)
        split_ops: 1_500,
        merge_ops: 5,
        split_bytes: 64 << 20,
        merge_bytes: 16 << 20,
        cooldown_us: 2 * SEC,
        stall_us: 60 * SEC,
        max_inflight: 3,
        replication: 1,
        min_ranges: 2,
        max_ranges: 48,
    }
}

fn run_point(scale: &Scale, zipf_s: f64) -> Point {
    // One seed per skew level keeps the points independent but replayable.
    let seed = 0xF1EE_5CA1_E000 | (zipf_s * 100.0) as u64;
    let mut h = FleetHarness::new(SimConfig::with_seed(seed), fleet_cfg(), INTERVAL);
    h.boot_fleet(scale.ranges, scale.key_count);
    h.sim.add_clients(
        scale.clients,
        Workload {
            key_count: scale.key_count,
            value_size: 256,
            get_ratio: 0.2,
            dup_prob: 0.02,
            zipf_s,
            ..Workload::default()
        },
    );
    let started = std::time::Instant::now();
    h.run(scale.run_us);
    let wall_ms = started.elapsed().as_millis();
    // The simulator hosts the whole fleet on the calling thread — recorded
    // as the baseline the TCP benches' fixed worker pools compare against.
    let peak_threads = os_thread_count().unwrap_or(0);

    // The numbers only count if the execution was correct.
    h.sim.check_invariants();
    h.sim.check_linearizability();
    h.sim.assert_exactly_once();

    let r = h.report();
    let vsecs = scale.run_us as f64 / SEC as f64;
    Point {
        zipf_s,
        completed_ops: r.completed_ops,
        ops_per_vsec: r.completed_ops as f64 / vsecs,
        splits: r.splits,
        merges: r.merges,
        max_overlap: r.max_overlap,
        ranges_end: r.ranges,
        redirects: r.redirects,
        redirect_rate: if r.completed_ops == 0 {
            0.0
        } else {
            r.redirects as f64 / r.completed_ops as f64
        },
        wall_ms,
        peak_threads,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let scale = if smoke {
        Scale {
            ranges: 2,
            key_count: 10_000,
            clients: 6,
            run_us: 20 * SEC,
        }
    } else {
        Scale {
            ranges: 8,
            key_count: 100_000,
            clients: 12,
            run_us: 90 * SEC,
        }
    };
    println!("=== Fleet autonomy under skew: split/merge controller vs zipfian load ===");
    println!(
        "    ({} boot ranges, {} keys, {} clients, {} virtual s per point{})\n",
        scale.ranges,
        scale.key_count,
        scale.clients,
        scale.run_us / SEC,
        if smoke { ", smoke scale" } else { "" }
    );
    println!(
        "{:>6} | {:>9} {:>10} | {:>6} {:>6} {:>7} {:>6} | {:>9} {:>8} | {:>8}",
        "zipf_s",
        "ops",
        "ops/vsec",
        "splits",
        "merges",
        "overlap",
        "ranges",
        "redirects",
        "redir/op",
        "wall_ms"
    );
    let mut points = Vec::new();
    for &s in SKEWS {
        let p = run_point(&scale, s);
        println!(
            "{:>6.2} | {:>9} {:>10.1} | {:>6} {:>6} {:>7} {:>6} | {:>9} {:>8.4} | {:>8}",
            p.zipf_s,
            p.completed_ops,
            p.ops_per_vsec,
            p.splits,
            p.merges,
            p.max_overlap,
            p.ranges_end,
            p.redirects,
            p.redirect_rate,
            p.wall_ms
        );
        let _ = std::io::stdout().flush();
        points.push(p);
    }

    // The headline claim: more skew means more autonomous reshaping. The
    // uniform baseline spreads load below the split threshold; the skewed
    // points concentrate it until the controller has to act.
    let baseline = &points[0];
    let most_skewed = points.last().expect("at least one point");
    assert!(
        points.iter().all(|p| p.completed_ops > 0),
        "every point must complete client operations"
    );
    assert!(
        most_skewed.splits >= 1,
        "hotspot-heavy skew must trigger at least one autonomous split"
    );
    assert!(
        most_skewed.splits + most_skewed.merges >= baseline.splits + baseline.merges,
        "skew should drive at least as much reshaping as uniform load"
    );
    write_summary(&scale, &points, smoke).expect("write bench summary");
}

/// Writes the JSON summary CI uploads as the perf-trajectory artifact.
fn write_summary(scale: &Scale, points: &[Point], smoke: bool) -> std::io::Result<()> {
    // Benches run with the package as CWD; anchor on the manifest so the
    // summary lands in the workspace-level target dir CI uploads from.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-summaries");
    std::fs::create_dir_all(&dir)?;
    let mut f = std::fs::File::create(dir.join("BENCH_fleet_scale.json"))?;
    writeln!(
        f,
        "{{\n  \"bench\": \"fleet_scale\",\n  \"smoke\": {smoke},\n  \
         \"boot_ranges\": {},\n  \"key_count\": {},\n  \"clients\": {},\n  \
         \"virtual_secs\": {},\n  \"points\": [",
        scale.ranges,
        scale.key_count,
        scale.clients,
        scale.run_us / SEC
    )?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"zipf_s\": {:.2}, \"completed_ops\": {}, \"ops_per_vsec\": {:.1}, \
             \"splits\": {}, \"merges\": {}, \"max_overlap\": {}, \"ranges_end\": {}, \
             \"redirects\": {}, \"redirect_rate\": {:.4}, \"wall_ms\": {}, \
             \"peak_threads\": {}}}{comma}",
            p.zipf_s,
            p.completed_ops,
            p.ops_per_vsec,
            p.splits,
            p.merges,
            p.max_overlap,
            p.ranges_end,
            p.redirects,
            p.redirect_rate,
            p.wall_ms,
            p.peak_threads
        )?;
    }
    writeln!(f, "  ]\n}}")?;
    Ok(())
}
