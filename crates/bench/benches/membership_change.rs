//! §VII-E: membership change — consensus steps and end-to-end latency of
//! ReCraft's Add/RemoveAndResize against the AR-RPC and joint-consensus
//! baselines, for all transitions between the practical cluster sizes
//! 2..=5 (the paper: "ReCraft performs equal to or better ... except when
//! reducing from 5 to 2, which requires one extra consensus step than JC").
//!
//! Run with: `cargo bench -p recraft-bench --bench membership_change`

use recraft_bench::{bench_sim, node_ids, SEC};
use recraft_core::votes::{ar_rpc_steps, jc_steps, Plan};
use recraft_net::AdminCmd;
use recraft_sim::Sim;
use recraft_types::{ClusterId, NodeId, RangeSet};
use std::collections::BTreeSet;

const CLUSTER: ClusterId = ClusterId(1);

/// Boots a sim with `n_old` active members and configuration-less joiners
/// that wait to be contacted.
fn setup(n_old: u64, n_new: u64, seed: u64) -> Sim {
    let mut sim = bench_sim(seed);
    sim.boot_cluster(CLUSTER, &node_ids(n_old), RangeSet::full());
    for id in n_old + 1..=n_new {
        sim.boot_joiner(NodeId(id));
    }
    sim.run_until_leader(CLUSTER);
    // Pin leadership on node 1 (never removed by the transitions below):
    // operators do not remove the acting leader — etcd transfers leadership
    // first — and a self-removal election would pollute the latency numbers.
    for _ in 0..10 {
        if sim.leader_of(CLUSTER) == Some(NodeId(1)) {
            break;
        }
        sim.campaign(NodeId(1));
        sim.run_for(SEC);
    }
    sim.run_for(SEC);
    sim
}

fn settled(sim: &Sim, members: u64) -> bool {
    sim.leader_of(CLUSTER).is_some_and(|l| {
        let n = sim.node(l).unwrap();
        n.config().members().len() == members as usize
            && n.config().quorum_size() == recraft_types::config::majority(members as usize)
    })
}

/// ReCraft: one AddAndResize / staged RemoveAndResize (follow-up
/// ResizeQuorum steps are automatic).
fn recraft_latency(n_old: u64, n_new: u64) -> f64 {
    let mut sim = setup(n_old, n_new, 0xE0 + n_old * 10 + n_new);
    let t0 = sim.time();
    if n_new > n_old {
        let add: BTreeSet<NodeId> = (n_old + 1..=n_new).map(NodeId).collect();
        sim.admin(CLUSTER, AdminCmd::AddAndResize(add));
    } else {
        // Stage removals as the plan prescribes (r < Q_old per step).
        let mut current = n_old;
        while current > n_new {
            let q_old = recraft_types::config::majority(current as usize) as u64;
            let r = (q_old - 1).min(current - n_new);
            let remove: BTreeSet<NodeId> = (current - r + 1..=current).map(NodeId).collect();
            sim.admin(CLUSTER, AdminCmd::RemoveAndResize(remove));
            current -= r;
            let c = current;
            sim.run_until_pred(30 * SEC, |s| settled(s, c));
        }
    }
    sim.run_until_pred(30 * SEC, |s| settled(s, n_new));
    (sim.time() - t0) as f64 / 1000.0
}

/// Baseline AR-RPC: one node per consensus step.
fn ar_rpc_latency(n_old: u64, n_new: u64) -> f64 {
    let mut sim = setup(n_old, n_new, 0xA0 + n_old * 10 + n_new);
    let t0 = sim.time();
    let mut current: BTreeSet<NodeId> = node_ids(n_old).into_iter().collect();
    if n_new > n_old {
        for id in n_old + 1..=n_new {
            current.insert(NodeId(id));
            sim.admin(CLUSTER, AdminCmd::SimpleChange(current.clone()));
            let want = current.clone();
            sim.run_until_pred(30 * SEC, |s| {
                s.leader_of(CLUSTER)
                    .is_some_and(|l| s.node(l).unwrap().config().members() == &want)
            });
        }
    } else {
        for id in (n_new + 1..=n_old).rev() {
            current.remove(&NodeId(id));
            sim.admin(CLUSTER, AdminCmd::SimpleChange(current.clone()));
            let want = current.clone();
            sim.run_until_pred(30 * SEC, |s| {
                s.leader_of(CLUSTER)
                    .is_some_and(|l| s.node(l).unwrap().config().members() == &want)
            });
        }
    }
    (sim.time() - t0) as f64 / 1000.0
}

/// Baseline joint consensus: two steps regardless of delta.
fn jc_latency(n_old: u64, n_new: u64) -> f64 {
    let mut sim = setup(n_old, n_new, 0x1C + n_old * 10 + n_new);
    let t0 = sim.time();
    let target: BTreeSet<NodeId> = node_ids(n_new).into_iter().collect();
    sim.admin(CLUSTER, AdminCmd::JointChange(target));
    sim.run_until_pred(30 * SEC, |s| settled(s, n_new));
    (sim.time() - t0) as f64 / 1000.0
}

fn main() {
    println!("=== §VII-E: membership change steps and latency (sizes 2..=5) ===\n");
    println!(
        "{:>5} {:>5} | {:>9} {:>9} {:>9} | {:>10} {:>10} {:>10}",
        "Cold", "Cnew", "RC-steps", "JC-steps", "AR-steps", "RC ms", "JC ms", "AR ms"
    );
    let mut step_time_samples: Vec<f64> = Vec::new();
    for n_old in 2u64..=5 {
        for n_new in 2u64..=5 {
            if n_old == n_new {
                continue;
            }
            let rc_steps = Plan::new(n_old as usize, n_new as usize).consensus_steps();
            let rc = recraft_latency(n_old, n_new);
            let jc = jc_latency(n_old, n_new);
            let ar = ar_rpc_latency(n_old, n_new);
            println!(
                "{:>5} {:>5} | {:>9} {:>9} {:>9} | {:>10.1} {:>10.1} {:>10.1}",
                n_old,
                n_new,
                rc_steps,
                jc_steps(n_old as usize, n_new as usize),
                ar_rpc_steps(n_old as usize, n_new as usize),
                rc,
                jc,
                ar,
            );
            step_time_samples.push(rc / rc_steps as f64);
        }
    }
    let mean_step = step_time_samples.iter().sum::<f64>() / step_time_samples.len() as f64;
    println!("\nmean time per consensus step: {mean_step:.1} ms (paper: 11.4 ms on their cloud)");
    println!("paper shape: ReCraft <= JC and AR for 2..=5 except 5->2 (one extra step)");
}
