//! Figure 6: write throughput vs latency of a 3-node cluster as offered
//! load increases — "ReCraft-etcd" (a node whose configuration stack has
//! been exercised by reconfigurations) against the pristine baseline path.
//!
//! The paper's finding is that both curves coincide: ReCraft's machinery is
//! off the hot path. In this reproduction the reconfigured variant really
//! does run the extra code (config-stack derivation over folded state), so
//! agreement between the curves is meaningful.
//!
//! Run with: `cargo bench -p recraft-bench --bench fig6_overhead`

use recraft_bench::{bench_sim, node_ids, put_workload, SEC};
use recraft_net::AdminCmd;
use recraft_types::{ClusterId, NodeId, RangeSet};
use std::collections::BTreeSet;

const WARMUP: u64 = 2 * SEC;
const MEASURE: u64 = 6 * SEC;

fn run_point(clients: u64, exercise_reconfig: bool) -> (f64, f64) {
    let mut sim = bench_sim(0xF16 + clients);
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &node_ids(3), RangeSet::full());
    sim.run_until_leader(cluster);
    if exercise_reconfig {
        // Exercise the wait-free membership machinery: add a fourth node and
        // remove it again, leaving folded config state behind (the
        // "ReCraft-etcd" configuration).
        sim.boot_joiner(NodeId(4));
        sim.admin(cluster, AdminCmd::AddAndResize(BTreeSet::from([NodeId(4)])));
        sim.run_for(2 * SEC);
        sim.admin(
            cluster,
            AdminCmd::RemoveAndResize(BTreeSet::from([NodeId(4)])),
        );
        sim.run_for(2 * SEC);
    }
    sim.add_clients(clients, put_workload(10_000));
    sim.run_for(WARMUP);
    let from = sim.time();
    sim.run_for(MEASURE);
    let to = sim.time();
    let ops = sim.metrics().completed_between(from, to);
    let thr = ops as f64 / (MEASURE as f64 / SEC as f64) / 1000.0; // K req/s
    let lat = sim.metrics().mean_latency(from, to).unwrap_or(0.0) / SEC as f64; // seconds
    sim.check_invariants();
    (thr, lat)
}

fn main() {
    println!("=== Figure 6: throughput vs latency, ReCraft vs baseline path ===\n");
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "clients", "base K req/s", "base lat(s)", "RC K req/s", "RC lat(s)"
    );
    let mut max_gap: f64 = 0.0;
    for clients in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let (bt, bl) = run_point(clients, false);
        let (rt, rl) = run_point(clients, true);
        println!("{clients:>8} | {bt:>12.2} {bl:>12.4} | {rt:>12.2} {rl:>12.4}");
        if bt > 0.0 {
            max_gap = max_gap.max(((bt - rt) / bt).abs());
        }
    }
    println!(
        "\nmax relative throughput gap: {:.1}% (paper: the curves coincide)",
        max_gap * 100.0
    );
}
