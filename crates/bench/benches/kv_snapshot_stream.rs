//! Snapshot streaming: chunked (`DurableKv`) vs whole-blob (`KvStore`)
//! snapshot production, transfer framing, and install — at 10k and 100k
//! keys.
//!
//! The quantity under test is the transfer's **peak contiguous
//! allocation**: the whole-blob machine materializes the entire keyspace as
//! one `Bytes` (and one wire message), while the chunked machine's largest
//! unit is one segment-sized chunk regardless of keyspace size. The run
//! asserts the bound — peak chunk ≤ the configured chunk size (plus frame
//! slack) at every keyspace size — and reports end-to-end install latency
//! for both paths.
//!
//! Run with: `cargo bench -p recraft-bench --bench kv_snapshot_stream`
//! (`BENCH_SMOKE=1` shrinks the iteration count for CI smoke runs).
//! A machine-readable summary lands in
//! `target/bench-summaries/BENCH_kv_snapshot_stream.json`.

use bytes::Bytes;
use recraft_core::StateMachine;
use recraft_kv::{DurableKv, DurableKvOptions, KvCmd, KvStore};
use recraft_storage::Snapshot;
use recraft_types::{ClusterId, EpochTerm, LogIndex, RangeSet, SessionTable};
use std::io::Write;
use std::time::Instant;

const CHUNK_BYTES: usize = 64 * 1024;
/// Chunk-size bound plus per-chunk encoding slack (one oversized pair can
/// push a chunk slightly past the target).
const CHUNK_BOUND: usize = CHUNK_BYTES + 2 * 1024;

struct Point {
    keys: usize,
    mode: &'static str,
    total_bytes: usize,
    peak_alloc: usize,
    frames: usize,
    produce_ms: f64,
    install_ms: f64,
}

fn preload(keys: usize) -> KvStore {
    let mut store = KvStore::new();
    for i in 0..keys {
        let mut value = format!("value-{i}-").into_bytes();
        value.resize(512, b'v');
        store.apply(
            LogIndex(i as u64 + 1),
            &KvCmd::Put {
                key: format!("k{i:08}").into_bytes(),
                value: Bytes::from(value),
            }
            .encode(),
        );
    }
    store
}

/// Wraps a chunk list as the install stream the wire would carry, so both
/// paths are measured through the same `Snapshot::frames()` framing.
fn as_snapshot(chunks: Vec<Bytes>) -> Snapshot {
    Snapshot {
        last_index: LogIndex(1),
        last_eterm: EpochTerm::new(0, 1),
        cluster: ClusterId(1),
        ranges: RangeSet::full(),
        chunks,
        sessions: SessionTable::new(),
    }
}

fn bench_mode(keys: usize, durable: bool, iters: usize, tmp: &std::path::Path) -> Point {
    let seed = preload(keys);
    let src_dir = tmp.join(format!("src-{keys}"));
    let dst_dir = tmp.join(format!("dst-{keys}"));
    let opts = DurableKvOptions {
        fsync: false,
        chunk_bytes: CHUNK_BYTES,
        memtable_bytes: 1 << 30,
    };
    let durable_src =
        durable.then(|| DurableKv::create(&src_dir, seed.clone(), opts).expect("create src"));

    let mut produce = 0.0f64;
    let mut install = 0.0f64;
    let mut point = None;
    for _ in 0..iters {
        // Produce: the machine encodes its transfer payload.
        let t0 = Instant::now();
        let chunks = match &durable_src {
            Some(kv) => kv.snapshot_chunks(&RangeSet::full()),
            None => vec![seed.snapshot(&RangeSet::full())],
        };
        produce += t0.elapsed().as_secs_f64() * 1e3;

        let snapshot = as_snapshot(chunks);
        let frames = snapshot.frames();
        let total_bytes: usize = snapshot.chunks.iter().map(Bytes::len).sum();
        let peak_alloc = snapshot.max_chunk_bytes();

        // Install: the receiver assembles the frames and replaces its state
        // through the streaming surface (the exact path InstallSnapshot
        // drives).
        let t1 = Instant::now();
        let collected: Vec<Bytes> = frames.iter().map(|f| f.chunk.clone()).collect();
        if durable {
            let mut dst = DurableKv::create(&dst_dir, KvStore::new(), opts).expect("create dst");
            dst.restore_chunks(&collected).expect("install");
            assert_eq!(dst.len(), keys);
        } else {
            let mut dst = KvStore::new();
            dst.restore_chunks(&collected).expect("install");
            assert_eq!(dst.len(), keys);
        }
        install += t1.elapsed().as_secs_f64() * 1e3;

        point = Some(Point {
            keys,
            mode: if durable { "chunked" } else { "whole-blob" },
            total_bytes,
            peak_alloc,
            frames: frames.len(),
            produce_ms: 0.0,
            install_ms: 0.0,
        });
    }
    let mut point = point.expect("at least one iteration");
    point.produce_ms = produce / iters as f64;
    point.install_ms = install / iters as f64;
    point
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let iters = if smoke { 2 } else { 5 };
    let tmp = std::env::temp_dir().join(format!("recraft-kv-snapstream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("bench tmp dir");

    println!("=== KV snapshot streaming: chunked vs whole-blob install ===");
    println!("    (512 B values, {CHUNK_BYTES} B chunks, {iters} iterations)\n");
    println!(
        "{:>7} {:>11} | {:>10} {:>11} {:>7} | {:>11} {:>11}",
        "keys", "mode", "total", "peak alloc", "frames", "produce ms", "install ms"
    );

    let mut points = Vec::new();
    for keys in [10_000usize, 100_000] {
        for durable in [false, true] {
            let p = bench_mode(keys, durable, iters, &tmp);
            println!(
                "{:>7} {:>11} | {:>10} {:>11} {:>7} | {:>11.2} {:>11.2}",
                p.keys, p.mode, p.total_bytes, p.peak_alloc, p.frames, p.produce_ms, p.install_ms
            );
            points.push(p);
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);

    // The acceptance bar: the whole-blob peak grows with the keyspace; the
    // chunked peak does not — it stays under the chunk bound at every size.
    for p in &points {
        match p.mode {
            "whole-blob" => assert_eq!(
                p.peak_alloc, p.total_bytes,
                "whole-blob transfers the keyspace as one allocation"
            ),
            _ => assert!(
                p.peak_alloc <= CHUNK_BOUND,
                "chunked peak {} exceeds the {CHUNK_BOUND} bound at {} keys",
                p.peak_alloc,
                p.keys
            ),
        }
    }
    let small = points
        .iter()
        .find(|p| p.mode == "chunked" && p.keys == 10_000)
        .unwrap();
    let large = points
        .iter()
        .find(|p| p.mode == "chunked" && p.keys == 100_000)
        .unwrap();
    assert!(
        large.peak_alloc <= CHUNK_BOUND && small.peak_alloc <= CHUNK_BOUND,
        "peak allocation is bounded by chunk size, not keyspace size"
    );
    println!(
        "\nchunked peak allocation: {} B at 10k keys, {} B at 100k keys \
         (bound {CHUNK_BOUND} B); whole-blob peaks grow {:.1}x with the keyspace",
        small.peak_alloc,
        large.peak_alloc,
        points
            .iter()
            .find(|p| p.mode == "whole-blob" && p.keys == 100_000)
            .unwrap()
            .peak_alloc as f64
            / points
                .iter()
                .find(|p| p.mode == "whole-blob" && p.keys == 10_000)
                .unwrap()
                .peak_alloc as f64
    );
    write_summary(&points).expect("write bench summary");
}

/// Writes the JSON summary CI uploads as the perf-trajectory artifact.
fn write_summary(points: &[Point]) -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-summaries");
    std::fs::create_dir_all(&dir)?;
    let mut f = std::fs::File::create(dir.join("BENCH_kv_snapshot_stream.json"))?;
    writeln!(
        f,
        "{{\n  \"bench\": \"kv_snapshot_stream\",\n  \"points\": ["
    )?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"keys\": {}, \"mode\": \"{}\", \"total_bytes\": {}, \
             \"peak_alloc\": {}, \"frames\": {}, \"produce_ms\": {:.3}, \
             \"install_ms\": {:.3}}}{comma}",
            p.keys, p.mode, p.total_bytes, p.peak_alloc, p.frames, p.produce_ms, p.install_ms
        )?;
    }
    writeln!(f, "  ]\n}}")?;
    Ok(())
}
