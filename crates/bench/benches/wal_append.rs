//! Durable-path append throughput: `WalLog` with per-entry vs batched sync,
//! against the in-memory baseline.
//!
//! The write-ahead barrier in the node syncs once per `take_outputs`, i.e.
//! once per processed message — the batched shapes below are what the
//! replication hot path actually pays per AppendEntries batch. Run with
//! physical fsync off (the simulator configuration) and on (production
//! durability) to see the knob the `WalOptions::fsync` flag controls.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recraft_storage::{LogStore, MemLog, WalLog, WalOptions};
use recraft_types::{EpochTerm, LogIndex};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct BenchDir(PathBuf);

impl BenchDir {
    fn new() -> BenchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("recraft-bench-wal-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        BenchDir(path)
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn entry(i: u64) -> recraft_storage::LogEntry {
    recraft_storage::LogEntry::command(
        LogIndex(i),
        EpochTerm::new(0, 1),
        Bytes::from_static(&[0x42; 64]),
    )
}

/// Appends `batch` entries then syncs once; returns entries/sec-shaped work.
fn append_batch<L: LogStore>(log: &mut L, next: &mut u64, batch: u64) {
    for _ in 0..batch {
        log.append(entry(*next));
        *next += 1;
    }
    log.sync();
    // Periodic compaction keeps the retained window realistic (the node
    // compacts at its snapshot threshold); without it the log grows without
    // bound across bench iterations and the numbers drift.
    if log.len() > 8192 {
        let last = log.last_index();
        let eterm = log.last_eterm();
        log.compact_to(last, eterm).expect("bench compaction");
    }
}

fn bench_backend(c: &mut Criterion, name: &str, fsync: bool) {
    for batch in [1u64, 64] {
        let dir = BenchDir::new();
        let mut wal = WalLog::open_with(
            &dir.0,
            WalOptions {
                fsync,
                segment_bytes: 4 * 1024 * 1024,
            },
        )
        .expect("open bench wal");
        let mut next = 1u64;
        c.bench_function(&format!("wal_append/{name}/batch{batch}"), |b| {
            b.iter(|| {
                append_batch(&mut wal, &mut next, batch);
                black_box(wal.last_index())
            });
        });
    }
}

fn wal_append(c: &mut Criterion) {
    // The in-memory baseline: what the durable path is measured against.
    {
        let mut mem = MemLog::new();
        let mut next = 1u64;
        c.bench_function("wal_append/mem-baseline/batch64", |b| {
            b.iter(|| {
                append_batch(&mut mem, &mut next, 64);
                black_box(LogStore::last_index(&mem))
            });
        });
    }
    // Simulator shape: write-through, durable watermark only.
    bench_backend(c, "nofsync", false);
    // Production shape: physical fdatasync per barrier. batch=1 is the
    // per-entry-fsync worst case; batch=64 amortizes it per append batch.
    bench_backend(c, "fsync", true);
}

criterion_group!(benches, wal_append);
criterion_main!(benches);
