//! Read throughput: the leader's ReadIndex fast path against log-appended
//! reads, at 3- and 5-node cluster sizes.
//!
//! A log-appended read pays a full append + commit round (one entry
//! replicated to a quorum and applied everywhere); a ReadIndex read pays one
//! quorum heartbeat round and is answered from the leader's applied state —
//! reads batch onto a single probe round, followers do no apply work, and
//! the log stays untouched. The gap between the two rows is the win of the
//! canonical consensus read optimization.
//!
//! Run with: `cargo bench -p recraft-bench --bench read_throughput`

use recraft_bench::{bench_sim, node_ids, read_workload, SEC};
use recraft_types::{ClusterId, RangeSet};

const WARMUP: u64 = 2 * SEC;
const MEASURE: u64 = 6 * SEC;
const GET_RATIO: f64 = 0.95;

/// Completed-operation throughput (K req/s) for one configuration.
fn run_point(nodes: u64, clients: u64, reads_via_log: bool) -> f64 {
    let mut sim = bench_sim(0x9EAD ^ nodes.wrapping_mul(31) ^ clients);
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &node_ids(nodes), RangeSet::full());
    sim.run_until_leader(cluster);
    sim.add_clients(clients, read_workload(10_000, GET_RATIO, reads_via_log));
    sim.run_for(WARMUP);
    let from = sim.time();
    sim.run_for(MEASURE);
    let to = sim.time();
    let ops = sim.metrics().completed_between(from, to);
    sim.check_invariants();
    sim.check_linearizability();
    if !reads_via_log {
        assert!(
            sim.read_index_served() > 0,
            "ReadIndex path must actually serve"
        );
    }
    ops as f64 / (MEASURE as f64 / SEC as f64) / 1000.0
}

fn main() {
    println!("=== Read throughput: ReadIndex vs log-appended reads (95% gets) ===\n");
    println!(
        "{:>6} {:>8} | {:>16} {:>16} | {:>8}",
        "nodes", "clients", "log K req/s", "ReadIndex K req/s", "speedup"
    );
    for nodes in [3u64, 5] {
        for clients in [8u64, 32, 128] {
            let via_log = run_point(nodes, clients, true);
            let read_index = run_point(nodes, clients, false);
            let speedup = if via_log > 0.0 {
                read_index / via_log
            } else {
                0.0
            };
            println!(
                "{nodes:>6} {clients:>8} | {via_log:>16.2} {read_index:>16.2} | {speedup:>7.2}x"
            );
        }
    }
    println!("\nReadIndex reads skip the log: no append, no per-follower apply.");
}
