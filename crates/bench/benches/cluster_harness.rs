//! Real-deployment saturation: open-loop clients against loopback-TCP
//! clusters.
//!
//! Unlike every other bench in this crate, nothing here is simulated. Each
//! node runs on its own OS thread; peers exchange the wire messages over
//! real loopback TCP; `wal` nodes physically fsync at every output
//! barrier; and 256 client threads keep a windowed backlog standing at the
//! leader. The numbers are wall-clock: ns per confirmed op (open-loop,
//! fleet-wide) and confirmed ops per millisecond, swept across 1/3/5-node
//! clusters on both storage backends.
//!
//! The run asserts its own acceptance bars: every client finishes, the
//! session table confirms exactly-once delivery, and the 3-node `wal`
//! configuration amortizes group commit well below one fsync barrier per
//! committed entry per node.
//!
//! Run with: `cargo bench -p recraft-bench --bench cluster_harness`
//! (`BENCH_SMOKE=1` shrinks per-client ops and skips the 5-node tier for
//! CI smoke runs). A machine-readable summary lands in
//! `target/bench-summaries/BENCH_cluster_harness.json`.

use recraft_cluster::{
    os_thread_count, verify_sessions, ClientOptions, Cluster, ClusterSpec, HarnessBackend,
};
use std::io::Write;
use std::time::Duration;

/// Fleet size — the target deployment load from the issue brief.
const CLIENTS: u64 = 256;

struct Point {
    nodes: usize,
    backend: &'static str,
    total_ops: u64,
    ns_per_op: f64,
    ops_per_ms: f64,
    sync_per_entry: f64,
    redirects: u64,
    stale_confirmed: u64,
    elections: u64,
    snapshot_installs: u64,
    peak_threads: usize,
    mean_wire_batch: f64,
    idle_wakeups_per_sec: f64,
}

fn run_point(nodes: usize, backend: HarnessBackend, ops_per_client: u64) -> Point {
    let mut spec = ClusterSpec::new(nodes, backend);
    // Size election timeouts to the deployment, as production configs do.
    // With the node drivers plus the whole client fleet contending for the
    // host's cores, a driver can legitimately go seconds without being
    // scheduled; default (150-300 ms) timeouts then read scheduling delay
    // as leader death and the run dissolves into election churn, redirect
    // storms, and snapshot re-images of starved followers (the per-point
    // `elections`/`snapshot_installs` columns make this visible). Nothing
    // crashes in this bench, so failure-detection latency costs nothing —
    // only the liveness condition broadcastTime << electionTimeout has to
    // hold, and loopback broadcast is microseconds.
    spec.timing.election_timeout_min = 10_000_000;
    spec.timing.election_timeout_max = 20_000_000;
    spec.timing.heartbeat_interval = 1_000_000;
    let cluster = Cluster::launch(&spec);
    cluster
        .wait_for_leader(Duration::from_secs(60))
        .expect("leader election");
    // Idle window before the fleet attaches: with heartbeats at 1 s and
    // elections settled, the readiness loop should wake on deadlines only —
    // the column that shows the sweep loop's 2 000/s-per-worker busy-idle
    // is gone.
    let idle_window = Duration::from_millis(1_500);
    let w0 = cluster.wire_stats();
    std::thread::sleep(idle_window);
    let w1 = cluster.wire_stats();
    let idle_wakeups_per_sec =
        (w1.idle_wakeups - w0.idle_wakeups) as f64 / idle_window.as_secs_f64();
    let opts = ClientOptions {
        ops: ops_per_client,
        window: 8,
        value_size: 512,
        // Open-loop queueing delay is the point, not a fault: with
        // clients × window ops standing at the leader, a response can
        // legitimately queue for seconds. Keep the read timeout well above
        // that so reconnect-resend only fires for genuinely lost replies.
        read_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(600),
        ..ClientOptions::default()
    };
    // A sidecar thread records the process-wide high-water mark while the
    // client fleet is attached: workers + clients, never a per-node term.
    let peak = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let (peak, stop) = (std::sync::Arc::clone(&peak), std::sync::Arc::clone(&stop));
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            while !stop.load(Ordering::Relaxed) {
                if let Some(n) = os_thread_count() {
                    peak.fetch_max(n, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let fleet = cluster.run_clients(CLIENTS, &opts);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().expect("sampler thread");
    let peak_threads = peak.load(std::sync::atomic::Ordering::Relaxed);
    let mean_wire_batch = cluster.wire_stats().mean_batch();
    let unfinished = fleet.reports.iter().filter(|r| !r.completed).count();
    assert_eq!(
        unfinished,
        0,
        "{unfinished} of {CLIENTS} clients missed the deadline at {nodes} nodes / {}",
        backend.as_str()
    );
    let total_ops = CLIENTS * ops_per_client;
    assert_eq!(fleet.confirmed_ops(), total_ops);
    let elapsed_ns = fleet.elapsed.as_nanos() as f64;

    let elections = cluster.elections();
    let snapshot_installs = cluster.snapshot_installs();
    let members = cluster.shutdown();
    verify_sessions(&members, CLIENTS, ops_per_client);
    let syncs: u64 = members.iter().map(|n| n.log().sync_count()).sum();
    let committed = members
        .iter()
        .map(|n| n.commit_index().0)
        .max()
        .unwrap_or(0);
    let sync_per_entry = if committed > 0 {
        syncs as f64 / (committed as f64 * members.len() as f64)
    } else {
        0.0
    };
    Point {
        nodes,
        backend: backend.as_str(),
        total_ops,
        ns_per_op: elapsed_ns / total_ops as f64,
        ops_per_ms: total_ops as f64 / (elapsed_ns / 1e6),
        sync_per_entry,
        redirects: fleet.reports.iter().map(|r| r.redirects).sum(),
        stale_confirmed: fleet.reports.iter().map(|r| r.stale_confirmed).sum(),
        elections,
        snapshot_installs,
        peak_threads,
        mean_wire_batch,
        idle_wakeups_per_sec,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    // Full: ~100k ops fleet-wide per configuration. Smoke: enough to
    // saturate briefly while keeping CI wall-clock small.
    let ops_per_client: u64 = if smoke { 8 } else { 390 };
    let node_tiers: &[usize] = if smoke { &[3] } else { &[1, 3, 5] };
    println!("=== Real cluster: OS threads + loopback TCP, open-loop saturation ===");
    println!(
        "    ({CLIENTS} client threads x {ops_per_client} ops, window 8, 512 B values{})\n",
        if smoke { ", smoke scale" } else { "" }
    );
    println!(
        "{:>5} {:>4} | {:>10} {:>10} {:>10} | {:>9} {:>6} {:>6} {:>8}",
        "nodes", "wal?", "ns/op", "op/ms", "sync/entry", "redirects", "stale", "elects", "installs"
    );
    let mut points = Vec::new();
    let mut wal3_sync_per_entry = f64::NAN;
    for &nodes in node_tiers {
        for backend in [HarnessBackend::Mem, HarnessBackend::Wal] {
            let p = run_point(nodes, backend, ops_per_client);
            println!(
                "{:>5} {:>4} | {:>10.0} {:>10.2} {:>10.4} | {:>9} {:>6} {:>6} {:>8}",
                p.nodes,
                p.backend,
                p.ns_per_op,
                p.ops_per_ms,
                p.sync_per_entry,
                p.redirects,
                p.stale_confirmed,
                p.elections,
                p.snapshot_installs
            );
            // Keep progress visible when stdout is a file or CI pipe.
            let _ = std::io::stdout().flush();
            if nodes == 3 && backend == HarnessBackend::Wal {
                wal3_sync_per_entry = p.sync_per_entry;
            }
            points.push(p);
        }
    }
    println!(
        "\n3-node wal group-commit amortization: {wal3_sync_per_entry:.4} \
         fsync barriers per committed entry per node (bar: < 1.0)"
    );
    write_summary(&points, ops_per_client).expect("write bench summary");
    assert!(
        wal3_sync_per_entry < 1.0,
        "wal group commit must amortize below one sync per entry, got {wal3_sync_per_entry:.4}"
    );
}

/// Writes the JSON summary CI uploads as the perf-trajectory artifact.
fn write_summary(points: &[Point], ops_per_client: u64) -> std::io::Result<()> {
    // Benches run with the package as CWD; anchor on the manifest so the
    // summary lands in the workspace-level target dir CI uploads from.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-summaries");
    std::fs::create_dir_all(&dir)?;
    let mut f = std::fs::File::create(dir.join("BENCH_cluster_harness.json"))?;
    writeln!(
        f,
        "{{\n  \"bench\": \"cluster_harness\",\n  \"clients\": {CLIENTS},\n  \
         \"ops_per_client\": {ops_per_client},\n  \"points\": ["
    )?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"nodes\": {}, \"backend\": \"{}\", \"total_ops\": {}, \
             \"ns_per_op\": {:.0}, \"ops_per_ms\": {:.3}, \"sync_per_entry\": {:.4}, \
             \"redirects\": {}, \"stale_confirmed\": {}, \"elections\": {}, \
             \"snapshot_installs\": {}, \"peak_threads\": {}, \
             \"mean_wire_batch\": {:.2}, \"idle_wakeups_per_sec\": {:.2}}}{comma}",
            p.nodes,
            p.backend,
            p.total_ops,
            p.ns_per_op,
            p.ops_per_ms,
            p.sync_per_entry,
            p.redirects,
            p.stale_confirmed,
            p.elections,
            p.snapshot_installs,
            p.peak_threads,
            p.mean_wire_batch,
            p.idle_wakeups_per_sec
        )?;
    }
    writeln!(f, "  ]\n}}")?;
    Ok(())
}
