//! The etcd-like key-value layer on top of the ReCraft consensus core.
//!
//! Production systems running consensus-based SMR implement key-value
//! interfaces, and "independent access to keys naturally lends the system to
//! sharding" (§III). This crate provides:
//!
//! * [`KvCmd`] / [`KvResp`] — the typed command set (put/get/delete/ingest)
//!   with a compact binary encoding,
//! * [`KvStore`] — a revisioned in-memory key-value [`StateMachine`] with
//!   range-scoped snapshots (what split retains and merge exchanges),
//! * [`DurableKv`] — the on-disk machine: memtable + immutable crc-framed
//!   segment files per key sub-range, a manifest with a persisted
//!   applied-index watermark, native bounded snapshot chunks, and crash
//!   recovery via [`DurableKv::open`],
//! * [`KvMachine`] — the runtime-selected union of the two (the simulator
//!   boots it from `RECRAFT_SM=mem|durable`),
//! * [`lin`] — a linearizability witness checker used by the simulator and
//!   the integration tests.
//!
//! [`StateMachine`]: recraft_core::StateMachine
//!
//! # Example
//! ```
//! use bytes::Bytes;
//! use recraft_core::StateMachine;
//! use recraft_kv::{KvCmd, KvResp, KvStore};
//! use recraft_types::LogIndex;
//!
//! let mut store = KvStore::new();
//! let cmd = KvCmd::Put {
//!     key: b"color".to_vec(),
//!     value: Bytes::from_static(b"teal"),
//! };
//! let raw = store.apply(LogIndex(1), &cmd.encode());
//! assert!(matches!(KvResp::decode(&raw).unwrap(), KvResp::Ok { .. }));
//! let get = KvCmd::Get { key: b"color".to_vec(), nonce: 1 };
//! let got = store.apply(LogIndex(2), &get.encode());
//! assert_eq!(
//!     KvResp::decode(&got).unwrap(),
//!     KvResp::Value { revision: 2, value: Some(Bytes::from_static(b"teal")) }
//! );
//! ```

pub mod lin;

mod durable;
mod machine;
#[cfg(test)]
mod proptests;
mod store;

pub use durable::{DurableKv, DurableKvOptions};
pub use machine::KvMachine;
pub use store::{KvCmd, KvResp, KvStore};
