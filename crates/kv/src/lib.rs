//! The etcd-like key-value layer on top of the ReCraft consensus core.
//!
//! Production systems running consensus-based SMR implement key-value
//! interfaces, and "independent access to keys naturally lends the system to
//! sharding" (§III). This crate provides:
//!
//! * [`KvCmd`] / [`KvResp`] — the typed command set (put/get/delete/ingest)
//!   with a compact binary encoding,
//! * [`KvStore`] — a revisioned key-value [`StateMachine`] with range-scoped
//!   snapshots (what split retains and merge exchanges),
//! * [`lin`] — a linearizability witness checker used by the simulator and
//!   the integration tests.
//!
//! [`StateMachine`]: recraft_core::StateMachine
//!
//! # Example
//! ```
//! use bytes::Bytes;
//! use recraft_core::StateMachine;
//! use recraft_kv::{KvCmd, KvResp, KvStore};
//! use recraft_types::LogIndex;
//!
//! let mut store = KvStore::new();
//! let cmd = KvCmd::Put {
//!     key: b"color".to_vec(),
//!     value: Bytes::from_static(b"teal"),
//! };
//! let raw = store.apply(LogIndex(1), &cmd.encode());
//! assert!(matches!(KvResp::decode(&raw).unwrap(), KvResp::Ok { .. }));
//! let get = KvCmd::Get { key: b"color".to_vec(), nonce: 1 };
//! let got = store.apply(LogIndex(2), &get.encode());
//! assert_eq!(
//!     KvResp::decode(&got).unwrap(),
//!     KvResp::Value { revision: 2, value: Some(Bytes::from_static(b"teal")) }
//! );
//! ```

pub mod lin;
mod store;

pub use store::{KvCmd, KvResp, KvStore};
