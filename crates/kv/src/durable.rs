//! `DurableKv`: the on-disk, range-partitioned key-value state machine.
//!
//! # Data-dir layout
//!
//! ```text
//! <dir>/
//!   MANIFEST.bin      crc-framed, replaced atomically (write-tmp + rename):
//!                     revision, applied-index watermark, segment directory
//!   seg-<seq>.kvs     immutable crc-framed segment: one key sub-range's
//!                     pairs in snapshot-chunk format ([u64 revision][map])
//! ```
//!
//! # Design
//!
//! Applies land in an in-memory **memtable** (the dirty overlay since the
//! last flush) layered over the materialized [`KvStore`] view that serves
//! reads. Once the memtable outgrows `memtable_bytes`, a **flush**
//! re-partitions the state into immutable segment files of at most
//! `chunk_bytes` each — written tmp-first and committed by atomically
//! replacing the manifest, exactly like `WalLog`'s metadata files. The
//! manifest also persists the **applied-index watermark**: the highest log
//! index whose effects the flushed image contains. Recovery ([`DurableKv::
//! open`]) rebuilds the view from the manifest's segments, drops torn
//! garbage past any segment's frame, and deletes unreferenced files from
//! interrupted flushes; entries applied after the last flush are gone, and
//! the consensus layer re-applies them from its own log/snapshot (the same
//! contract an in-memory machine has after a crash, with the flushed prefix
//! surviving for free).
//!
//! # Why segments are per key range
//!
//! Segment files are disjoint and key-ordered, so the streaming snapshot
//! surface can hand a clean, fully-covered segment's payload off as a
//! transfer chunk without re-encoding — a split's `RangeSet` moves whole
//! files, and a merge's combined state is the union of the participants'
//! segment sets. Every chunk (and therefore every install frame on the
//! wire) is bounded by `chunk_bytes`, never by the keyspace.

use crate::store::{KvCmd, KvStore};
use bytes::{Bytes, BytesMut};
use recraft_core::StateMachine;
use recraft_storage::framing::{io_err, read_framed, read_framed_prefix, sync_dir, write_framed};
use recraft_types::codec::{Decode, Encode};
use recraft_types::{LogIndex, RangeSet, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Tuning knobs for a [`DurableKv`].
#[derive(Debug, Clone, Copy)]
pub struct DurableKvOptions {
    /// Issue physical fsyncs on flush (disable in simulations for speed;
    /// the write-tmp + rename commit protocol is identical either way).
    pub fsync: bool,
    /// Target payload bytes per segment file — and therefore the bound on
    /// every snapshot chunk this machine emits.
    pub chunk_bytes: usize,
    /// Memtable (dirty overlay) size that triggers a flush.
    pub memtable_bytes: usize,
}

impl Default for DurableKvOptions {
    fn default() -> Self {
        DurableKvOptions {
            fsync: true,
            chunk_bytes: 64 * 1024,
            memtable_bytes: 256 * 1024,
        }
    }
}

/// One immutable on-disk segment: a disjoint key sub-range's pairs, cached
/// in memory in its encoded snapshot-chunk form.
#[derive(Debug, Clone)]
struct Segment {
    seq: u64,
    /// First key stored (inclusive).
    first: Vec<u8>,
    /// Last key stored (inclusive).
    last: Vec<u8>,
    count: u64,
    /// The store revision embedded in the payload (its value at encode
    /// time; read-only applies can advance the live revision past it).
    revision: u64,
    /// The file's framed payload: `[u64 revision][map]` — reusable verbatim
    /// as a snapshot chunk when the segment is clean and fully in range.
    payload: Bytes,
}

impl Segment {
    fn file_name(seq: u64) -> String {
        format!("seg-{seq:016}.kvs")
    }

    fn path(&self, dir: &Path) -> PathBuf {
        dir.join(Self::file_name(self.seq))
    }
}

/// The on-disk, range-partitioned KV state machine (see the module docs).
#[derive(Debug)]
pub struct DurableKv {
    dir: PathBuf,
    opts: DurableKvOptions,
    /// The materialized current state serving reads and applies; byte-for-
    /// byte the same dispatch as the in-memory machine.
    inner: KvStore,
    /// The dirty overlay since the last flush: key → live value or
    /// tombstone. Keys present here make their covering segment stale.
    memtable: BTreeMap<Vec<u8>, Option<Bytes>>,
    /// Approximate bytes in the memtable (flush trigger).
    memtable_bytes: usize,
    /// Flushed, immutable, key-ordered disjoint segments.
    segments: Vec<Segment>,
    /// Segment files dropped from the directory listing but not yet deleted
    /// (deleted after the next manifest commit; recovery GCs them too).
    stale_files: Vec<PathBuf>,
    /// Whether the materialized state changed since the last flush through
    /// any path (applies, installs, range retention) — a flush with this
    /// clear and no watermark movement is a no-op.
    dirty_state: bool,
    /// Highest applied log index seen (volatile).
    applied: LogIndex,
    /// The applied-index watermark of the flushed image (persisted in the
    /// manifest): recovery restores state as of exactly this index.
    durable_applied: LogIndex,
    /// The lineage token the consensus layer last tagged us with (volatile
    /// until the next flush commits it to the manifest).
    lineage: u64,
    /// The lineage token of the flushed image (persisted in the manifest):
    /// what a reboot can honestly claim the image belongs to.
    durable_lineage: u64,
    /// Full-image rebuilds (restore / merge resumption / chunked install)
    /// since open — observable by tests asserting the O(delta) reboot path
    /// skipped the rebuild.
    restores: u64,
}

impl DurableKv {
    /// Creates a fresh store at `dir`, wiping whatever the directory held,
    /// seeded with `inner`'s contents (the TC baseline preloads restarted
    /// subclusters this way). The seed state is flushed before returning.
    ///
    /// # Errors
    /// Returns [`recraft_types::Error::Storage`] on I/O failure.
    pub fn create(dir: impl AsRef<Path>, inner: KvStore, opts: DurableKvOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).map_err(|e| io_err("create kv dir", &dir, &e))?;
        let mut kv = DurableKv {
            dir,
            opts,
            inner,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            segments: Vec::new(),
            stale_files: Vec::new(),
            dirty_state: true, // the seed (even an empty one) must commit
            applied: LogIndex::ZERO,
            durable_applied: LogIndex::ZERO,
            lineage: 0,
            durable_lineage: 0,
            restores: 0,
        };
        kv.flush();
        Ok(kv)
    }

    /// Opens a store at `dir`, recovering the flushed image: the manifest
    /// names the live segments, torn bytes past any segment's frame are
    /// dropped, and files the manifest does not reference (interrupted
    /// flushes, orphaned tmp files) are deleted. A missing manifest is an
    /// empty store; a manifest whose referenced segments are unreadable
    /// degrades to an empty store too — the consensus layer reinstalls from
    /// its own snapshot, so graceful degradation beats refusing to boot.
    ///
    /// # Errors
    /// Returns [`recraft_types::Error::Storage`] when the directory itself cannot be
    /// created or listed.
    pub fn open(dir: impl AsRef<Path>, opts: DurableKvOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create kv dir", &dir, &e))?;
        let mut kv = DurableKv {
            dir: dir.clone(),
            opts,
            inner: KvStore::new(),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            segments: Vec::new(),
            stale_files: Vec::new(),
            dirty_state: false,
            applied: LogIndex::ZERO,
            durable_applied: LogIndex::ZERO,
            lineage: 0,
            durable_lineage: 0,
            restores: 0,
        };
        let manifest = read_framed(&dir.join("MANIFEST.bin"))
            .and_then(|mut payload| Manifest::decode(&mut payload).ok());
        if let Some(manifest) = manifest {
            let mut entries: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
            let mut segments = Vec::new();
            let mut referenced = Vec::new();
            let mut intact = true;
            for meta in &manifest.segments {
                let path = dir.join(Segment::file_name(meta.seq));
                referenced.push(path.clone());
                // Tolerate torn garbage past the frame — the write that was
                // striking the platter when power died.
                let Some(payload) = read_framed_prefix(&path) else {
                    intact = false;
                    break;
                };
                let Ok((revision, map)) = decode_chunk(&payload) else {
                    intact = false;
                    break;
                };
                if map.len() as u64 != meta.count {
                    intact = false;
                    break;
                }
                entries.extend(map);
                segments.push(Segment {
                    seq: meta.seq,
                    first: meta.first.clone(),
                    last: meta.last.clone(),
                    count: meta.count,
                    revision,
                    payload,
                });
            }
            if intact {
                kv.inner.set_state(entries, manifest.revision);
                kv.segments = segments;
                kv.applied = manifest.watermark;
                kv.durable_applied = manifest.watermark;
                kv.lineage = manifest.lineage;
                kv.durable_lineage = manifest.lineage;
            } else {
                // A referenced segment is unreadable: the flushed image is
                // unrecoverable as a whole. Reset to empty (atomicity over
                // partial keyspaces) and let consensus reinstall.
                kv.inner = KvStore::new();
                kv.segments.clear();
                kv.stale_files = referenced;
                kv.dirty_state = true;
                kv.flush();
            }
        }
        kv.gc_unreferenced();
        Ok(kv)
    }

    /// Deletes files the manifest does not reference: segments from
    /// interrupted flushes and orphaned `.tmp` files.
    fn gc_unreferenced(&mut self) {
        let live: BTreeSet<u64> = self.segments.iter().map(|s| s.seq).collect();
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in listing.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let stray_seg = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".kvs"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seq| !live.contains(&seq));
            if stray_seg || name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        self.stale_files.clear();
    }

    // ---- Accessors -------------------------------------------------------

    /// The data directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the store holds no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The current revision (count of applied commands).
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.inner.revision()
    }

    /// Direct read access (linearizable reads go through the log/ReadIndex).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.inner.get(key)
    }

    /// Approximate data size in bytes (keys + values).
    #[must_use]
    pub fn data_size(&self) -> usize {
        self.inner.data_size()
    }

    /// The median resident key within `ranges`. See [`KvStore::split_key`].
    ///
    /// [`KvStore::split_key`]: crate::KvStore::split_key
    #[must_use]
    pub fn split_key(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        self.inner.split_key(ranges)
    }

    /// Number of live segment files.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The applied-index watermark of the flushed (durable) image: state up
    /// to this log index survives [`DurableKv::open`].
    #[must_use]
    pub fn watermark(&self) -> LogIndex {
        self.durable_applied
    }

    /// Keys currently dirty in the memtable (unflushed since the last
    /// flush; lost by a power cut, re-applied by consensus).
    #[must_use]
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Full-image rebuilds (restore / merge resumption / chunked install)
    /// since this store object opened. The O(delta) reboot path is exactly
    /// "reopen with `restore_count() == 0`".
    #[must_use]
    pub fn restore_count(&self) -> u64 {
        self.restores
    }

    // ---- Memtable and flush ---------------------------------------------

    /// Notes the keys a command dirties; their covering segments become
    /// stale for chunk handoff until the next flush.
    fn note_dirty(&mut self, cmd: &Bytes) {
        // Every apply moves the revision, which the next flush must commit.
        self.dirty_state = true;
        match KvCmd::decode(cmd) {
            Ok(KvCmd::Put { key, value }) => {
                self.memtable_bytes += key.len() + value.len();
                self.memtable.insert(key, Some(value));
            }
            Ok(KvCmd::Delete { key, .. }) => {
                self.memtable_bytes += key.len();
                self.memtable.insert(key, None);
            }
            Ok(KvCmd::Ingest { data }) => {
                // The bulk-load payload is a snapshot blob; every key in it
                // is dirtied (apply ignores a malformed payload, and so does
                // this accounting).
                let mut buf = data.clone();
                if u64::decode(&mut buf).is_ok() {
                    if let Ok(map) = KvStore::decode_map(&buf) {
                        for (key, value) in map {
                            self.memtable_bytes += key.len() + value.len();
                            self.memtable.insert(key, Some(value));
                        }
                    }
                }
            }
            Ok(KvCmd::Get { .. }) | Err(_) => {}
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable_bytes >= self.opts.memtable_bytes {
            self.flush();
        }
    }

    /// Flushes the current state incrementally: clean segments keep their
    /// files untouched; segments whose span the memtable dirtied — plus any
    /// new keys between spans — rewrite into fresh immutable segments of at
    /// most `chunk_bytes`. The flush commits by atomically replacing the
    /// manifest (which also advances the durable applied-index watermark),
    /// then deletes the superseded files. A crash anywhere in between
    /// recovers either the old image or the new one, never a mixture.
    pub fn flush(&mut self) {
        if !self.dirty_state && self.stale_files.is_empty() && self.applied == self.durable_applied
        {
            return; // nothing to commit
        }
        let revision = self.inner.revision();
        // Clean segments survive as-is; dirty ones are superseded.
        let all: Vec<Segment> = std::mem::take(&mut self.segments);
        let next_seq = all.iter().map(|s| s.seq).max().unwrap_or(0) + 1;
        let mut retained: Vec<Segment> = Vec::new();
        let mut dropped: Vec<PathBuf> = std::mem::take(&mut self.stale_files);
        for seg in all {
            if self.segment_dirty(&seg) {
                dropped.push(seg.path(&self.dir));
            } else {
                retained.push(seg);
            }
        }
        // Rewrite everything not covered by a retained span, one contiguous
        // key region between retained spans at a time (regions never cross
        // a span, so the segment set stays disjoint and key-ordered).
        let mut new_segments: Vec<Segment> = Vec::new();
        {
            let mut spans: Vec<(&[u8], &[u8])> = retained
                .iter()
                .map(|s| (s.first.as_slice(), s.last.as_slice()))
                .collect();
            spans.sort();
            let mut span_i = 0usize;
            let mut region: Vec<(&Vec<u8>, &Bytes)> = Vec::new();
            let mut regions: Vec<Vec<(&Vec<u8>, &Bytes)>> = Vec::new();
            for (key, value) in self.inner.entries() {
                while span_i < spans.len() && key.as_slice() > spans[span_i].1 {
                    span_i += 1;
                }
                let covered = span_i < spans.len()
                    && key.as_slice() >= spans[span_i].0
                    && key.as_slice() <= spans[span_i].1;
                if covered {
                    if !region.is_empty() {
                        regions.push(std::mem::take(&mut region));
                    }
                } else {
                    region.push((key, value));
                }
            }
            if !region.is_empty() {
                regions.push(region);
            }
            let mut seq = next_seq;
            for region in regions {
                for (first, last, count, payload) in
                    chunk_runs(&region, revision, self.opts.chunk_bytes)
                {
                    let path = self.dir.join(Segment::file_name(seq));
                    write_framed(&path, &payload, self.opts.fsync)
                        .unwrap_or_else(|e| panic!("kv segment write failed: {e}"));
                    new_segments.push(Segment {
                        seq,
                        first,
                        last,
                        count,
                        revision,
                        payload,
                    });
                    seq += 1;
                }
            }
        }
        let mut segments = retained;
        segments.append(&mut new_segments);
        segments.sort_by(|a, b| a.first.cmp(&b.first));
        let manifest = Manifest {
            revision,
            watermark: self.applied,
            lineage: self.lineage,
            segments: segments
                .iter()
                .map(|s| SegMeta {
                    seq: s.seq,
                    first: s.first.clone(),
                    last: s.last.clone(),
                    count: s.count,
                })
                .collect(),
        };
        write_framed(
            &self.dir.join("MANIFEST.bin"),
            &manifest.encode_to_bytes(),
            self.opts.fsync,
        )
        .unwrap_or_else(|e| panic!("kv manifest write failed: {e}"));
        // The manifest commit point passed: the superseded files are
        // garbage.
        let live: BTreeSet<PathBuf> = segments.iter().map(|s| s.path(&self.dir)).collect();
        for path in dropped {
            if !live.contains(&path) {
                let _ = fs::remove_file(&path);
            }
        }
        if self.opts.fsync {
            sync_dir(&self.dir);
        }
        self.segments = segments;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.durable_applied = self.applied;
        self.durable_lineage = self.lineage;
        self.dirty_state = false;
    }

    /// Whether any memtable key falls inside `[first, last]` — i.e. whether
    /// the segment's on-disk payload still matches the live state.
    fn segment_dirty(&self, seg: &Segment) -> bool {
        self.memtable
            .range::<[u8], _>((
                std::ops::Bound::Included(seg.first.as_slice()),
                std::ops::Bound::Included(seg.last.as_slice()),
            ))
            .next()
            .is_some()
    }

    /// Drops every segment (file deletion deferred to the next manifest
    /// commit) and marks the whole state dirty — the replace-state paths
    /// (restore, merge resumption) rebuild from here.
    fn drop_all_segments(&mut self) {
        let dir = self.dir.clone();
        self.stale_files
            .extend(self.segments.drain(..).map(|s| s.path(&dir)));
    }
}

impl StateMachine for DurableKv {
    fn apply(&mut self, index: LogIndex, cmd: &Bytes) -> Bytes {
        self.applied = self.applied.max(index);
        self.note_dirty(cmd);
        let resp = self.inner.apply_cmd(cmd).encode();
        self.maybe_flush();
        resp
    }

    fn apply_batch(&mut self, entries: &[(LogIndex, Bytes)]) -> Vec<Bytes> {
        let mut responses = Vec::with_capacity(entries.len());
        for (index, cmd) in entries {
            self.applied = self.applied.max(*index);
            self.note_dirty(cmd);
            responses.push(self.inner.apply_cmd(cmd).encode());
        }
        // One flush check per batch: the whole run lands in one image.
        self.maybe_flush();
        responses
    }

    fn query(&self, key: &[u8]) -> Bytes {
        self.inner.query(key)
    }

    fn snapshot(&self, ranges: &RangeSet) -> Bytes {
        self.inner.snapshot(ranges)
    }

    fn note_lineage(&mut self, lineage: u64) {
        if self.lineage != lineage {
            self.lineage = lineage;
            // Commit with the next flush: a manifest-only rewrite when the
            // memtable is clean (no segment churn).
            self.dirty_state = true;
        }
    }

    fn recovered_watermark(&self) -> Option<(u64, LogIndex)> {
        // Report the *durable* pair: a note_lineage that has not flushed yet
        // must not let a reboot claim the image for the new lineage.
        Some((self.durable_lineage, self.durable_applied))
    }

    fn restore(&mut self, data: &Bytes) -> Result<()> {
        self.restores += 1;
        self.inner.restore(data)?;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.dirty_state = true;
        // See install_begin: a replaced state invalidates the watermark.
        self.applied = LogIndex::ZERO;
        self.drop_all_segments();
        self.flush();
        Ok(())
    }

    fn restore_merged(&mut self, parts: &[Bytes]) -> Result<()> {
        self.restores += 1;
        self.inner.restore_merged(parts)?;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.dirty_state = true;
        // Merge resumption renumbers the log; the old lineage's watermark
        // must not survive into the new one.
        self.applied = LogIndex::ZERO;
        self.drop_all_segments();
        self.flush();
        Ok(())
    }

    fn retain_ranges(&mut self, ranges: &RangeSet) {
        let before = self.inner.len();
        self.inner.retain_ranges(ranges);
        self.memtable.retain(|k, _| ranges.contains(k));
        if self.inner.len() == before {
            return; // nothing dropped: the flushed image still matches
        }
        self.dirty_state = true;
        // A split's RangeSet hands off whole files: segments fully outside
        // the retained ranges are simply deleted; segments the retention cut
        // into are rewritten by the flush below (the clean survivors keep
        // their files through the incremental flush).
        let dir = self.dir.clone();
        let (keep, drop): (Vec<Segment>, Vec<Segment>) = std::mem::take(&mut self.segments)
            .into_iter()
            .partition(|s| {
                range_covered(ranges, &s.first, &s.last)
                    && self
                        .inner
                        .entries()
                        .range::<[u8], _>((
                            std::ops::Bound::Included(s.first.as_slice()),
                            std::ops::Bound::Included(s.last.as_slice()),
                        ))
                        .count() as u64
                        == s.count
            });
        self.segments = keep;
        self.stale_files
            .extend(drop.into_iter().map(|s| s.path(&dir)));
        self.flush();
    }

    // ---- Streaming surface (native: one chunk per key sub-range) --------

    fn snapshot_chunks(&self, ranges: &RangeSet) -> Vec<Bytes> {
        let revision = self.inner.revision();
        let mut chunks = Vec::new();
        // Whole-file handoff: a clean segment fully inside `ranges`
        // contributes its cached payload verbatim (no re-encode, no copy).
        // `spans` collects the covered intervals so the sweep below can
        // skip their keys.
        let mut spans: Vec<(&[u8], &[u8])> = Vec::new();
        let mut reused_revision = 0u64;
        for seg in &self.segments {
            if seg.count == 0 || self.segment_dirty(seg) {
                continue;
            }
            let fully_covered = range_covered(ranges, &seg.first, &seg.last)
                && self
                    .inner
                    .entries()
                    .range::<[u8], _>((
                        std::ops::Bound::Included(seg.first.as_slice()),
                        std::ops::Bound::Included(seg.last.as_slice()),
                    ))
                    .count() as u64
                    == seg.count;
            if fully_covered {
                chunks.push(seg.payload.clone());
                spans.push((seg.first.as_slice(), seg.last.as_slice()));
                reused_revision = reused_revision.max(seg.revision);
            }
        }
        spans.sort();
        // Everything else in range — dirty spans, partially-covered
        // segments, unflushed keys — re-encodes into fresh bounded chunks.
        let in_span = |key: &[u8]| {
            let i = spans.partition_point(|(_, b)| *b < key);
            i < spans.len() && spans[i].0 <= key
        };
        let extras: Vec<(&Vec<u8>, &Bytes)> = self
            .inner
            .entries()
            .iter()
            .filter(|(k, _)| ranges.contains(k) && !in_span(k))
            .collect();
        let had_extras = !extras.is_empty();
        for (_, _, _, payload) in chunk_runs(&extras, revision, self.opts.chunk_bytes) {
            chunks.push(payload);
        }
        // The restored revision is the maximum over the chunks' embedded
        // revisions. Reused payloads embed their flush-time revision, which
        // read-only applies may have advanced past — a tiny marker chunk
        // pins the live revision so every receiver lands on the exact same
        // state an unchunked restore would produce.
        if chunks.is_empty() || (!had_extras && reused_revision < revision) {
            chunks.push(empty_chunk(revision));
        }
        chunks
    }

    fn chunked_install(&self) -> bool {
        true // install_chunk merges sub-range blobs
    }

    fn install_begin(&mut self) {
        self.restores += 1;
        self.inner = KvStore::new();
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.dirty_state = true;
        // The install surface carries no log index, so the watermark of the
        // replaced state is meaningless for the incoming image (it may even
        // come from a renumbered log lineage after a merge). Reset it —
        // ZERO is trivially honest ("this image contains at least nothing
        // past index 0") — and let subsequent applies re-establish it.
        self.applied = LogIndex::ZERO;
        self.drop_all_segments();
    }

    fn install_chunk(&mut self, chunk: &Bytes) -> Result<()> {
        self.dirty_state = true;
        self.inner.absorb_snapshot_blob(chunk)
    }

    fn install_finish(&mut self) -> Result<()> {
        // Persist the installed image: a reboot right after an install
        // recovers it without waiting for the next organic flush.
        self.flush();
        Ok(())
    }

    fn power_cut(&mut self, keep_unsynced: usize) {
        // The flushed image is commit-point durable (write-tmp + rename);
        // what dies with the process is the memtable. Model the write that
        // was striking the platter at the instant of death: torn garbage
        // appended past the newest segment's frame, plus an orphaned tmp
        // file — both of which recovery must detect and drop.
        if keep_unsynced > 0 {
            let garbage = vec![0x5Au8; keep_unsynced];
            if let Some(seg) = self.segments.last() {
                if let Ok(mut f) = fs::OpenOptions::new()
                    .append(true)
                    .open(seg.path(&self.dir))
                {
                    use std::io::Write as _;
                    let _ = f.write_all(&garbage);
                }
            }
            let _ = fs::write(self.dir.join("MANIFEST.tmp"), &garbage);
        }
        // The store object is dead after this; the caller reopens the dir.
    }

    fn resident_bytes(&self) -> usize {
        self.data_size()
    }

    fn split_hint(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        self.split_key(ranges)
    }
}

// ---- Chunk partitioning and codecs -----------------------------------------

/// Encodes the degenerate empty-state chunk (`[revision][empty map]`).
fn empty_chunk(revision: u64) -> Bytes {
    let mut buf = BytesMut::new();
    revision.encode(&mut buf);
    buf.extend_from_slice(&KvStore::encode_map(&BTreeMap::new()));
    buf.freeze()
}

/// Encodes key-ordered pairs straight into the snapshot-blob format
/// (`[u64 revision][u32 count][len-prefixed key/value...]`) — byte-for-byte
/// what [`KvStore::snapshot`] produces for the same pairs, without the
/// intermediate map copies (this sits on the flush hot path).
fn encode_pairs(revision: u64, pairs: &[(&Vec<u8>, &Bytes)]) -> Bytes {
    let body: usize = pairs.iter().map(|(k, v)| k.len() + v.len() + 8).sum();
    let mut buf = BytesMut::with_capacity(16 + body);
    revision.encode(&mut buf);
    (pairs.len() as u32).encode(&mut buf);
    for (key, value) in pairs {
        (key.len() as u32).encode(&mut buf);
        buf.extend_from_slice(key);
        (value.len() as u32).encode(&mut buf);
        buf.extend_from_slice(value);
    }
    buf.freeze()
}

/// Splits `pairs` (key-ordered) into encoded chunks of at most
/// `chunk_bytes` payload (always at least one pair per chunk), returning
/// `(first, last, count, payload)` per chunk.
fn chunk_runs(
    pairs: &[(&Vec<u8>, &Bytes)],
    revision: u64,
    chunk_bytes: usize,
) -> Vec<(Vec<u8>, Vec<u8>, u64, Bytes)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < pairs.len() {
        let mut end = start;
        let mut bytes = 0usize;
        while end < pairs.len() {
            let (key, value) = pairs[end];
            let pair_bytes = key.len() + value.len() + 16;
            if bytes + pair_bytes > chunk_bytes && end > start {
                break;
            }
            bytes += pair_bytes;
            end += 1;
        }
        let run = &pairs[start..end];
        out.push((
            run[0].0.clone(),
            run[run.len() - 1].0.clone(),
            run.len() as u64,
            encode_pairs(revision, run),
        ));
        start = end;
    }
    out
}

/// Decodes a segment/chunk payload into its embedded revision and pairs.
fn decode_chunk(payload: &Bytes) -> Result<(u64, BTreeMap<Vec<u8>, Bytes>)> {
    let mut buf = payload.clone();
    let revision = u64::decode(&mut buf)?;
    Ok((revision, KvStore::decode_map(&buf)?))
}

/// Whether `[first, last]` lies entirely inside `ranges`. Conservative: the
/// interval is inside when both endpoints are in the *same* contained
/// range (segments never straddle a range boundary after the flush that
/// follows every `retain_ranges`, so this only skips reuse briefly after a
/// range change — correctness never depends on it).
fn range_covered(ranges: &RangeSet, first: &[u8], last: &[u8]) -> bool {
    ranges
        .ranges()
        .iter()
        .any(|r| r.contains(first) && r.contains(last))
}

/// One segment's directory entry in the manifest.
struct SegMeta {
    seq: u64,
    first: Vec<u8>,
    last: Vec<u8>,
    count: u64,
}

/// The manifest: the flush commit record.
struct Manifest {
    revision: u64,
    watermark: LogIndex,
    lineage: u64,
    segments: Vec<SegMeta>,
}

impl Encode for SegMeta {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.first.encode(buf);
        self.last.encode(buf);
        self.count.encode(buf);
    }
}

impl Decode for SegMeta {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(SegMeta {
            seq: u64::decode(buf)?,
            first: Vec::<u8>::decode(buf)?,
            last: Vec::<u8>::decode(buf)?,
            count: u64::decode(buf)?,
        })
    }
}

impl Encode for Manifest {
    fn encode(&self, buf: &mut BytesMut) {
        self.revision.encode(buf);
        self.watermark.encode(buf);
        self.lineage.encode(buf);
        self.segments.encode(buf);
    }
}

impl Decode for Manifest {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(Manifest {
            revision: u64::decode(buf)?,
            watermark: LogIndex::decode(buf)?,
            lineage: u64::decode(buf)?,
            segments: Vec::<SegMeta>::decode(buf)?,
        })
    }
}

#[cfg(test)]
pub(crate) mod testdir {
    //! Unique, self-cleaning temp directories for kv tests.

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A temp directory removed on drop.
    pub struct TestDir(pub PathBuf);

    impl TestDir {
        pub fn new(tag: &str) -> TestDir {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("recraft-kv-test-{}-{tag}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TestDir(path)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testdir::TestDir;
    use super::*;
    use crate::store::KvResp;
    use recraft_types::KeyRange;

    fn opts() -> DurableKvOptions {
        DurableKvOptions {
            fsync: false,
            chunk_bytes: 256,    // tiny: everything partitions
            memtable_bytes: 512, // tiny: flushes happen mid-test
        }
    }

    fn put(kv: &mut DurableKv, i: u64, key: &str, value: &str) -> KvResp {
        let raw = kv.apply(
            LogIndex(i),
            &KvCmd::Put {
                key: key.as_bytes().to_vec(),
                value: Bytes::from(value.to_string()),
            }
            .encode(),
        );
        KvResp::decode(&raw).unwrap()
    }

    fn fill(kv: &mut DurableKv, from: u64, to: u64) {
        for i in from..=to {
            put(kv, i, &format!("k{i:04}"), &format!("value-{i:04}-padding"));
        }
    }

    #[test]
    fn matches_mem_store_responses_and_state() {
        let dir = TestDir::new("equiv");
        let mut durable = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
        let mut mem = KvStore::new();
        let cmds: Vec<Bytes> = (1..=40u64)
            .map(|i| {
                if i % 7 == 0 {
                    KvCmd::Delete {
                        key: format!("k{:04}", i / 2).into_bytes(),
                        nonce: i,
                    }
                    .encode()
                } else if i % 5 == 0 {
                    KvCmd::Get {
                        key: format!("k{:04}", i / 2).into_bytes(),
                        nonce: i,
                    }
                    .encode()
                } else {
                    KvCmd::Put {
                        key: format!("k{:04}", i % 13).into_bytes(),
                        value: Bytes::from(format!("v{i}")),
                    }
                    .encode()
                }
            })
            .collect();
        for (i, cmd) in cmds.iter().enumerate() {
            let index = LogIndex(i as u64 + 1);
            assert_eq!(
                durable.apply(index, cmd),
                mem.apply(index, cmd),
                "byte-identical responses at {index}"
            );
        }
        assert_eq!(durable.revision(), mem.revision());
        assert_eq!(durable.len(), mem.len());
        assert_eq!(
            durable.snapshot(&RangeSet::full()),
            mem.snapshot(&RangeSet::full()),
            "whole-blob snapshots agree"
        );
    }

    #[test]
    fn flushed_state_survives_reopen_with_watermark() {
        let dir = TestDir::new("reopen");
        {
            let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
            fill(&mut kv, 1, 30);
            kv.flush();
            assert_eq!(kv.watermark(), LogIndex(30));
            assert!(kv.segment_count() > 1, "partitioned into several files");
        }
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.watermark(), LogIndex(30));
        assert_eq!(kv.len(), 30);
        assert_eq!(kv.revision(), 30);
        assert_eq!(
            kv.get(b"k0007").map(|b| b.as_ref()),
            Some(b"value-0007-padding".as_ref())
        );
    }

    #[test]
    fn unflushed_tail_is_lost_flushed_prefix_is_not() {
        let dir = TestDir::new("tail");
        {
            let mut kv = DurableKv::create(
                &dir.0,
                KvStore::new(),
                DurableKvOptions {
                    memtable_bytes: 1 << 20, // no auto flush
                    ..opts()
                },
            )
            .unwrap();
            fill(&mut kv, 1, 10);
            kv.flush();
            fill(&mut kv, 11, 15); // memtable only
            assert_eq!(kv.watermark(), LogIndex(10));
            kv.power_cut(23);
        }
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.watermark(), LogIndex(10), "recovers to the flush point");
        assert_eq!(kv.len(), 10);
        assert!(kv.get(b"k0011").is_none(), "unflushed writes are gone");
        assert!(kv.get(b"k0010").is_some(), "flushed writes are not");
    }

    #[test]
    fn torn_segment_tail_garbage_is_dropped() {
        let dir = TestDir::new("torn");
        {
            let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
            fill(&mut kv, 1, 20);
            kv.flush();
            kv.power_cut(57); // garbage past the newest segment's frame + tmp
        }
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.len(), 20, "torn tail dropped, frames recovered");
        // The orphaned tmp file was GC'd.
        assert!(!dir.0.join("MANIFEST.tmp").exists());
    }

    #[test]
    fn corrupt_referenced_segment_degrades_to_empty() {
        let dir = TestDir::new("corrupt");
        {
            let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
            fill(&mut kv, 1, 20);
            kv.flush();
        }
        // Flip a byte inside the first segment's frame.
        let seg = fs::read_dir(&dir.0)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "kvs"))
            .min()
            .unwrap();
        let mut raw = fs::read(&seg).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&seg, &raw).unwrap();
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.len(), 0, "atomic degradation, never a partial keyspace");
        assert_eq!(kv.watermark(), LogIndex::ZERO);
    }

    #[test]
    fn snapshot_chunks_are_bounded_and_reassemble() {
        let dir = TestDir::new("chunks");
        let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
        fill(&mut kv, 1, 50);
        kv.flush();
        let chunks = kv.snapshot_chunks(&RangeSet::full());
        assert!(chunks.len() > 1, "several bounded chunks");
        let max = chunks.iter().map(Bytes::len).max().unwrap();
        assert!(
            max <= opts().chunk_bytes + 64,
            "chunk bound holds (got {max})"
        );
        // Reassembly through the install surface reproduces the state.
        let dir2 = TestDir::new("chunks2");
        let mut restored = DurableKv::create(&dir2.0, KvStore::new(), opts()).unwrap();
        restored.restore_chunks(&chunks).unwrap();
        assert_eq!(restored.len(), kv.len());
        assert_eq!(restored.revision(), kv.revision());
        assert_eq!(
            restored.snapshot(&RangeSet::full()),
            kv.snapshot(&RangeSet::full())
        );
        // And the in-memory machine's restore_merged accepts the same
        // chunks (shared blob format).
        let mut mem = KvStore::new();
        mem.restore_merged(&chunks).unwrap();
        assert_eq!(mem.len(), kv.len());
    }

    #[test]
    fn clean_segments_hand_off_whole_payloads() {
        let dir = TestDir::new("handoff");
        let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
        fill(&mut kv, 1, 40);
        kv.flush();
        let seg_payloads: BTreeSet<Bytes> = kv.segments.iter().map(|s| s.payload.clone()).collect();
        let chunks = kv.snapshot_chunks(&RangeSet::full());
        // Every chunk of a clean full-range snapshot IS a segment payload.
        assert!(
            chunks.iter().all(|c| seg_payloads.contains(c)),
            "clean flush: chunks are verbatim segment files"
        );
        // Dirty one key: its covering segment re-encodes, others still
        // hand off.
        put(&mut kv, 41, "k0001", "rewritten");
        let chunks = kv.snapshot_chunks(&RangeSet::full());
        let reused = chunks.iter().filter(|c| seg_payloads.contains(*c)).count();
        assert!(reused > 0, "clean segments still hand off");
        assert!(reused < chunks.len(), "the dirty span re-encoded");
    }

    #[test]
    fn retain_ranges_drops_whole_files_and_stays_durable() {
        let dir = TestDir::new("retain");
        {
            let mut kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
            fill(&mut kv, 1, 40);
            kv.flush();
            let (lo, _) = KeyRange::full().split_at(b"k0020").unwrap();
            kv.retain_ranges(&RangeSet::from(lo));
            assert_eq!(kv.len(), 19, "k0001..=k0019 retained");
        }
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.len(), 19, "retained image is durable");
        assert!(kv.get(b"k0019").is_some());
        assert!(kv.get(b"k0020").is_none());
    }

    #[test]
    fn create_preloads_and_persists() {
        let dir = TestDir::new("preload");
        let mut seed = KvStore::new();
        use recraft_core::StateMachine as _;
        seed.apply(
            LogIndex(1),
            &KvCmd::Put {
                key: b"seeded".to_vec(),
                value: Bytes::from_static(b"yes"),
            }
            .encode(),
        );
        {
            let kv = DurableKv::create(&dir.0, seed, opts()).unwrap();
            assert_eq!(kv.len(), 1);
        }
        let kv = DurableKv::open(&dir.0, opts()).unwrap();
        assert_eq!(kv.get(b"seeded").map(|b| b.as_ref()), Some(b"yes".as_ref()));
        assert_eq!(kv.revision(), 1, "seed revision survives");
    }

    #[test]
    fn empty_store_still_emits_one_chunk() {
        let dir = TestDir::new("empty");
        let kv = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
        let chunks = kv.snapshot_chunks(&RangeSet::full());
        assert_eq!(chunks.len(), 1);
        let mut mem = KvStore::new();
        mem.restore(&chunks[0]).unwrap();
        assert!(mem.is_empty());
    }
}
