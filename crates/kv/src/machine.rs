//! [`KvMachine`]: the runtime-selected key-value state machine.
//!
//! The simulator boots every node on one of the two machines depending on
//! `RECRAFT_SM` (`mem` | `durable`), crossed with the `RECRAFT_BACKEND` log
//! axis — so the whole test suite exercises all four combinations without
//! edits. The enum delegates the full [`StateMachine`] surface (including
//! the streaming snapshot methods and the crash hook) and re-exposes the
//! read accessors tests and the TC baseline use.

use crate::durable::DurableKv;
use crate::store::KvStore;
use bytes::Bytes;
use recraft_core::StateMachine;
use recraft_types::{LogIndex, RangeSet, Result};

/// A [`KvStore`] or a [`DurableKv`], chosen at boot time.
#[derive(Debug)]
pub enum KvMachine {
    /// The in-memory machine (whole-blob snapshots, no recovery surface).
    Mem(KvStore),
    /// The on-disk machine (chunked snapshots, reopen recovery).
    Durable(DurableKv),
}

impl KvMachine {
    /// The number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            KvMachine::Mem(s) => s.len(),
            KvMachine::Durable(s) => s.len(),
        }
    }

    /// Whether the store holds no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current revision (count of applied commands).
    #[must_use]
    pub fn revision(&self) -> u64 {
        match self {
            KvMachine::Mem(s) => s.revision(),
            KvMachine::Durable(s) => s.revision(),
        }
    }

    /// Direct read access (for tests and the router; linearizable reads go
    /// through the log or the ReadIndex path).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        match self {
            KvMachine::Mem(s) => s.get(key),
            KvMachine::Durable(s) => s.get(key),
        }
    }

    /// Approximate data size in bytes (keys + values).
    #[must_use]
    pub fn data_size(&self) -> usize {
        match self {
            KvMachine::Mem(s) => s.data_size(),
            KvMachine::Durable(s) => s.data_size(),
        }
    }

    /// The median resident key within `ranges` — the load-balanced split
    /// point. See [`KvStore::split_key`].
    ///
    /// [`KvStore::split_key`]: crate::KvStore::split_key
    #[must_use]
    pub fn split_key(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        match self {
            KvMachine::Mem(s) => s.split_key(ranges),
            KvMachine::Durable(s) => s.split_key(ranges),
        }
    }

    /// Full-image rebuilds since this machine object was created (always 0
    /// for the in-memory variant, which never rebuilds incrementally
    /// anyway). See [`DurableKv::restore_count`].
    #[must_use]
    pub fn restore_count(&self) -> u64 {
        match self {
            KvMachine::Mem(_) => 0,
            KvMachine::Durable(s) => s.restore_count(),
        }
    }

    /// The durable machine, when that is what is running.
    #[must_use]
    pub fn as_durable(&self) -> Option<&DurableKv> {
        match self {
            KvMachine::Mem(_) => None,
            KvMachine::Durable(s) => Some(s),
        }
    }
}

impl StateMachine for KvMachine {
    fn apply(&mut self, index: LogIndex, cmd: &Bytes) -> Bytes {
        match self {
            KvMachine::Mem(s) => s.apply(index, cmd),
            KvMachine::Durable(s) => s.apply(index, cmd),
        }
    }

    fn apply_batch(&mut self, entries: &[(LogIndex, Bytes)]) -> Vec<Bytes> {
        match self {
            KvMachine::Mem(s) => s.apply_batch(entries),
            KvMachine::Durable(s) => s.apply_batch(entries),
        }
    }

    fn query(&self, key: &[u8]) -> Bytes {
        match self {
            KvMachine::Mem(s) => s.query(key),
            KvMachine::Durable(s) => s.query(key),
        }
    }

    fn snapshot(&self, ranges: &RangeSet) -> Bytes {
        match self {
            KvMachine::Mem(s) => s.snapshot(ranges),
            KvMachine::Durable(s) => s.snapshot(ranges),
        }
    }

    fn restore(&mut self, data: &Bytes) -> Result<()> {
        match self {
            KvMachine::Mem(s) => s.restore(data),
            KvMachine::Durable(s) => s.restore(data),
        }
    }

    fn restore_merged(&mut self, parts: &[Bytes]) -> Result<()> {
        match self {
            KvMachine::Mem(s) => s.restore_merged(parts),
            KvMachine::Durable(s) => s.restore_merged(parts),
        }
    }

    fn retain_ranges(&mut self, ranges: &RangeSet) {
        match self {
            KvMachine::Mem(s) => s.retain_ranges(ranges),
            KvMachine::Durable(s) => s.retain_ranges(ranges),
        }
    }

    fn note_lineage(&mut self, lineage: u64) {
        match self {
            KvMachine::Mem(s) => s.note_lineage(lineage),
            KvMachine::Durable(s) => s.note_lineage(lineage),
        }
    }

    fn recovered_watermark(&self) -> Option<(u64, LogIndex)> {
        match self {
            KvMachine::Mem(s) => s.recovered_watermark(),
            KvMachine::Durable(s) => s.recovered_watermark(),
        }
    }

    fn snapshot_chunks(&self, ranges: &RangeSet) -> Vec<Bytes> {
        match self {
            KvMachine::Mem(s) => s.snapshot_chunks(ranges),
            KvMachine::Durable(s) => s.snapshot_chunks(ranges),
        }
    }

    fn chunked_install(&self) -> bool {
        match self {
            KvMachine::Mem(s) => s.chunked_install(),
            KvMachine::Durable(s) => s.chunked_install(),
        }
    }

    fn install_begin(&mut self) {
        match self {
            KvMachine::Mem(s) => s.install_begin(),
            KvMachine::Durable(s) => s.install_begin(),
        }
    }

    fn install_chunk(&mut self, chunk: &Bytes) -> Result<()> {
        match self {
            KvMachine::Mem(s) => s.install_chunk(chunk),
            KvMachine::Durable(s) => s.install_chunk(chunk),
        }
    }

    fn install_finish(&mut self) -> Result<()> {
        match self {
            KvMachine::Mem(s) => s.install_finish(),
            KvMachine::Durable(s) => s.install_finish(),
        }
    }

    fn restore_chunks(&mut self, chunks: &[Bytes]) -> Result<()> {
        match self {
            KvMachine::Mem(s) => s.restore_chunks(chunks),
            KvMachine::Durable(s) => s.restore_chunks(chunks),
        }
    }

    fn power_cut(&mut self, keep_unsynced: usize) {
        match self {
            KvMachine::Mem(s) => StateMachine::power_cut(s, keep_unsynced),
            KvMachine::Durable(s) => StateMachine::power_cut(s, keep_unsynced),
        }
    }

    fn resident_bytes(&self) -> usize {
        self.data_size()
    }

    fn split_hint(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        self.split_key(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::testdir::TestDir;
    use crate::durable::DurableKvOptions;
    use crate::store::KvCmd;

    #[test]
    fn both_variants_delegate_identically() {
        let dir = TestDir::new("machine");
        let mut mem = KvMachine::Mem(KvStore::new());
        let mut durable = KvMachine::Durable(
            DurableKv::create(
                &dir.0,
                KvStore::new(),
                DurableKvOptions {
                    fsync: false,
                    ..DurableKvOptions::default()
                },
            )
            .unwrap(),
        );
        let cmd = KvCmd::Put {
            key: b"k".to_vec(),
            value: Bytes::from_static(b"v"),
        }
        .encode();
        assert_eq!(
            mem.apply(LogIndex(1), &cmd),
            durable.apply(LogIndex(1), &cmd)
        );
        assert_eq!(mem.len(), durable.len());
        assert_eq!(mem.revision(), durable.revision());
        assert_eq!(mem.get(b"k"), durable.get(b"k"));
        assert_eq!(mem.query(b"k"), durable.query(b"k"));
        assert_eq!(
            mem.snapshot(&RangeSet::full()),
            durable.snapshot(&RangeSet::full())
        );
        assert!(mem.as_durable().is_none());
        assert!(durable.as_durable().is_some());
    }
}
