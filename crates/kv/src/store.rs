//! The key-value state machine.

use bytes::{Bytes, BytesMut};
use recraft_core::StateMachine;
use recraft_types::codec::{Decode, Encode};
use recraft_types::{Error, LogIndex, RangeSet, Result};
use std::collections::BTreeMap;

/// A command addressed to the key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCmd {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Bytes,
    },
    /// Read `key` (linearizable: gets travel through the log like writes).
    Get {
        /// The key.
        key: Vec<u8>,
        /// A client-unique nonce making the encoded command unique, so the
        /// linearizability checker can identify this exact operation in the
        /// apply order.
        nonce: u64,
    },
    /// Remove `key`.
    Delete {
        /// The key.
        key: Vec<u8>,
        /// A client-unique nonce (see [`KvCmd::Get::nonce`]).
        nonce: u64,
    },
    /// Bulk-load an encoded map (the TC baseline's data migration path).
    Ingest {
        /// An encoded `BTreeMap<Vec<u8>, Vec<u8>>` snapshot payload.
        data: Bytes,
    },
}

impl KvCmd {
    /// The key this command is routed by.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        match self {
            KvCmd::Put { key, .. } | KvCmd::Get { key, .. } | KvCmd::Delete { key, .. } => key,
            KvCmd::Ingest { .. } => b"",
        }
    }

    /// Encodes the command for transport through the log.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            KvCmd::Put { key, value } => {
                buf.extend_from_slice(&[0]);
                key.encode(&mut buf);
                value.encode(&mut buf);
            }
            KvCmd::Get { key, nonce } => {
                buf.extend_from_slice(&[1]);
                key.encode(&mut buf);
                nonce.encode(&mut buf);
            }
            KvCmd::Delete { key, nonce } => {
                buf.extend_from_slice(&[2]);
                key.encode(&mut buf);
                nonce.encode(&mut buf);
            }
            KvCmd::Ingest { data } => {
                buf.extend_from_slice(&[3]);
                data.encode(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Decodes a command.
    ///
    /// # Errors
    /// Returns [`Error::Codec`] on malformed input.
    pub fn decode(raw: &Bytes) -> Result<KvCmd> {
        let mut buf = raw.clone();
        let tag = u8::decode(&mut buf)?;
        match tag {
            0 => Ok(KvCmd::Put {
                key: Vec::<u8>::decode(&mut buf)?,
                value: Bytes::decode(&mut buf)?,
            }),
            1 => Ok(KvCmd::Get {
                key: Vec::<u8>::decode(&mut buf)?,
                nonce: u64::decode(&mut buf)?,
            }),
            2 => Ok(KvCmd::Delete {
                key: Vec::<u8>::decode(&mut buf)?,
                nonce: u64::decode(&mut buf)?,
            }),
            3 => Ok(KvCmd::Ingest {
                data: Bytes::decode(&mut buf)?,
            }),
            t => Err(Error::Codec(format!("unknown KvCmd tag {t}"))),
        }
    }
}

/// The store's reply to a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResp {
    /// A write succeeded at `revision`.
    Ok {
        /// The store revision after the write.
        revision: u64,
    },
    /// A read result (`None` when the key is absent).
    Value {
        /// The store revision at the read.
        revision: u64,
        /// The value, if present.
        value: Option<Bytes>,
    },
}

impl KvResp {
    /// Encodes the response.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            KvResp::Ok { revision } => {
                buf.extend_from_slice(&[0]);
                revision.encode(&mut buf);
            }
            KvResp::Value { revision, value } => {
                buf.extend_from_slice(&[1]);
                revision.encode(&mut buf);
                value.clone().encode(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Decodes a response.
    ///
    /// # Errors
    /// Returns [`Error::Codec`] on malformed input.
    pub fn decode(raw: &Bytes) -> Result<KvResp> {
        let mut buf = raw.clone();
        let tag = u8::decode(&mut buf)?;
        match tag {
            0 => Ok(KvResp::Ok {
                revision: u64::decode(&mut buf)?,
            }),
            1 => Ok(KvResp::Value {
                revision: u64::decode(&mut buf)?,
                value: Option::<Bytes>::decode(&mut buf)?,
            }),
            t => Err(Error::Codec(format!("unknown KvResp tag {t}"))),
        }
    }
}

/// A revisioned key-value store (the etcd layer's data model): every applied
/// command bumps the revision; snapshots are range-scoped encodings of the
/// map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    entries: BTreeMap<Vec<u8>, Bytes>,
    revision: u64,
}

impl KvStore {
    /// An empty store at revision 0.
    #[must_use]
    pub fn new() -> Self {
        KvStore::default()
    }

    /// The number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current revision (count of applied commands).
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Direct read access (for tests and the router; linearizable reads go
    /// through the log as [`KvCmd::Get`]).
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.entries.get(key)
    }

    /// Approximate data size in bytes (keys + values) — what a snapshot
    /// transfer moves.
    #[must_use]
    pub fn data_size(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// The median resident key within `ranges`, as a split point: half the
    /// stored pairs land on each side, which balances a split far better
    /// than a byte-midpoint when the key population is skewed. `None` when
    /// fewer than two resident keys fall in `ranges` (nothing to balance —
    /// the caller falls back to a byte midpoint or skips the split).
    #[must_use]
    pub fn split_key(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        let resident: Vec<&Vec<u8>> = self.entries.keys().filter(|k| ranges.contains(k)).collect();
        if resident.len() < 2 {
            return None;
        }
        // The BTreeMap iterates in key order: the midpoint element is the
        // median. It is strictly above at least one resident key, so a
        // split at it leaves both sides non-empty.
        Some(resident[resident.len() / 2].clone())
    }

    /// Applies one command: bumps the revision and answers. The single
    /// dispatch both [`StateMachine::apply`] and
    /// [`StateMachine::apply_batch`] go through — replicas must produce
    /// byte-identical responses whichever path delivered the entry.
    /// `DurableKv` routes its applies through the same dispatch, so the two
    /// machines answer byte-identically under identical logs.
    pub(crate) fn apply_cmd(&mut self, cmd: &Bytes) -> KvResp {
        self.revision += 1;
        match KvCmd::decode(cmd) {
            Ok(KvCmd::Put { key, value }) => {
                self.entries.insert(key, value);
                KvResp::Ok {
                    revision: self.revision,
                }
            }
            Ok(KvCmd::Get { key, .. }) => KvResp::Value {
                revision: self.revision,
                value: self.entries.get(&key).cloned(),
            },
            Ok(KvCmd::Delete { key, .. }) => {
                self.entries.remove(&key);
                KvResp::Ok {
                    revision: self.revision,
                }
            }
            Ok(KvCmd::Ingest { data }) => {
                // The payload is a snapshot: a revision prefix followed by
                // the encoded map (exactly what `snapshot()` produces).
                let mut buf = data.clone();
                if u64::decode(&mut buf).is_ok() {
                    if let Ok(map) = Self::decode_map(&buf) {
                        self.entries.extend(map);
                    }
                }
                KvResp::Ok {
                    revision: self.revision,
                }
            }
            // Malformed commands still consume a revision (deterministic
            // across replicas) and answer Ok.
            Err(_) => KvResp::Ok {
                revision: self.revision,
            },
        }
    }

    /// The stored pairs (the `DurableKv` wrapper partitions these into
    /// segment files).
    pub(crate) fn entries(&self) -> &BTreeMap<Vec<u8>, Bytes> {
        &self.entries
    }

    /// Merges a snapshot-format blob (`[u64 revision][map]`) into the store:
    /// pairs extend the map, the revision takes the maximum. The chunked
    /// install path feeds one bounded blob at a time through this.
    pub(crate) fn absorb_snapshot_blob(&mut self, data: &Bytes) -> Result<()> {
        let mut buf = data.clone();
        let revision = u64::decode(&mut buf)?;
        let map = Self::decode_map(&buf)?;
        self.entries.extend(map);
        self.revision = self.revision.max(revision);
        Ok(())
    }

    /// Replaces the whole state (recovery from decoded segment contents).
    pub(crate) fn set_state(&mut self, entries: BTreeMap<Vec<u8>, Bytes>, revision: u64) {
        self.entries = entries;
        self.revision = revision;
    }

    pub(crate) fn encode_map(map: &BTreeMap<Vec<u8>, Bytes>) -> Bytes {
        let plain: BTreeMap<Vec<u8>, Vec<u8>> =
            map.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect();
        let mut buf = BytesMut::new();
        plain.encode(&mut buf);
        buf.freeze()
    }

    pub(crate) fn decode_map(data: &Bytes) -> Result<BTreeMap<Vec<u8>, Bytes>> {
        let mut buf = data.clone();
        let plain = BTreeMap::<Vec<u8>, Vec<u8>>::decode(&mut buf)?;
        Ok(plain
            .into_iter()
            .map(|(k, v)| (k, Bytes::from(v)))
            .collect())
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, _index: LogIndex, cmd: &Bytes) -> Bytes {
        self.apply_cmd(cmd).encode()
    }

    fn apply_batch(&mut self, entries: &[(LogIndex, Bytes)]) -> Vec<Bytes> {
        // One pre-sized pass over the whole committed run, through the same
        // dispatch as the single-entry path.
        let mut responses = Vec::with_capacity(entries.len());
        for (_, cmd) in entries {
            responses.push(self.apply_cmd(cmd).encode());
        }
        responses
    }

    fn query(&self, key: &[u8]) -> Bytes {
        // The ReadIndex fast path: answered from the applied map, no log
        // traffic and no revision bump.
        KvResp::Value {
            revision: self.revision,
            value: self.entries.get(key).cloned(),
        }
        .encode()
    }

    fn snapshot(&self, ranges: &RangeSet) -> Bytes {
        let filtered: BTreeMap<Vec<u8>, Bytes> = self
            .entries
            .iter()
            .filter(|(k, _)| ranges.contains(k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut buf = BytesMut::new();
        self.revision.encode(&mut buf);
        buf.extend_from_slice(&Self::encode_map(&filtered));
        buf.freeze()
    }

    fn restore(&mut self, data: &Bytes) -> Result<()> {
        let mut buf = data.clone();
        let revision = u64::decode(&mut buf)?;
        let plain = BTreeMap::<Vec<u8>, Vec<u8>>::decode(&mut buf)?;
        self.revision = revision;
        self.entries = plain
            .into_iter()
            .map(|(k, v)| (k, Bytes::from(v)))
            .collect();
        Ok(())
    }

    fn restore_merged(&mut self, parts: &[Bytes]) -> Result<()> {
        let mut combined: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
        let mut revision = 0u64;
        for part in parts {
            let mut buf = part.clone();
            let part_rev = u64::decode(&mut buf)?;
            revision = revision.max(part_rev);
            let map = Self::decode_map(&buf)?;
            for (k, v) in map {
                if combined.insert(k, v).is_some() {
                    return Err(Error::InvalidRange("merge parts overlap on a key".into()));
                }
            }
        }
        self.entries = combined;
        self.revision = revision;
        Ok(())
    }

    fn retain_ranges(&mut self, ranges: &RangeSet) {
        self.entries.retain(|k, _| ranges.contains(k));
    }

    fn resident_bytes(&self) -> usize {
        self.data_size()
    }

    fn split_hint(&self, ranges: &RangeSet) -> Option<Vec<u8>> {
        self.split_key(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recraft_types::KeyRange;

    fn put(store: &mut KvStore, i: LogIndex, key: &str, value: &str) -> KvResp {
        let raw = store.apply(
            i,
            &KvCmd::Put {
                key: key.as_bytes().to_vec(),
                value: Bytes::from(value.to_string()),
            }
            .encode(),
        );
        KvResp::decode(&raw).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut store = KvStore::new();
        assert_eq!(
            put(&mut store, LogIndex(1), "a", "1"),
            KvResp::Ok { revision: 1 }
        );
        let got = store.apply(
            LogIndex(2),
            &KvCmd::Get {
                key: b"a".to_vec(),
                nonce: 0,
            }
            .encode(),
        );
        assert_eq!(
            KvResp::decode(&got).unwrap(),
            KvResp::Value {
                revision: 2,
                value: Some(Bytes::from_static(b"1"))
            }
        );
        store.apply(
            LogIndex(3),
            &KvCmd::Delete {
                key: b"a".to_vec(),
                nonce: 0,
            }
            .encode(),
        );
        let got = store.apply(
            LogIndex(4),
            &KvCmd::Get {
                key: b"a".to_vec(),
                nonce: 0,
            }
            .encode(),
        );
        assert_eq!(
            KvResp::decode(&got).unwrap(),
            KvResp::Value {
                revision: 4,
                value: None
            }
        );
        assert_eq!(store.revision(), 4);
    }

    #[test]
    fn cmd_codec_roundtrip() {
        let cmds = [
            KvCmd::Put {
                key: b"k".to_vec(),
                value: Bytes::from_static(b"v"),
            },
            KvCmd::Get {
                key: b"k".to_vec(),
                nonce: 1,
            },
            KvCmd::Delete {
                key: b"k".to_vec(),
                nonce: 2,
            },
            KvCmd::Ingest {
                data: Bytes::from_static(b"\x00\x00\x00\x00"),
            },
        ];
        for cmd in cmds {
            assert_eq!(KvCmd::decode(&cmd.encode()).unwrap(), cmd);
        }
        assert!(KvCmd::decode(&Bytes::from_static(b"\x09")).is_err());
    }

    #[test]
    fn resp_codec_roundtrip() {
        let resps = [
            KvResp::Ok { revision: 7 },
            KvResp::Value {
                revision: 9,
                value: Some(Bytes::from_static(b"x")),
            },
            KvResp::Value {
                revision: 9,
                value: None,
            },
        ];
        for r in resps {
            assert_eq!(KvResp::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn snapshot_restore_respects_ranges() {
        let mut store = KvStore::new();
        put(&mut store, LogIndex(1), "apple", "red");
        put(&mut store, LogIndex(2), "zebra", "striped");
        let (lo, hi) = KeyRange::full().split_at(b"m").unwrap();
        let lo_snap = store.snapshot(&RangeSet::from(lo));
        let hi_snap = store.snapshot(&RangeSet::from(hi));

        let mut restored = KvStore::new();
        restored.restore(&lo_snap).unwrap();
        assert_eq!(restored.len(), 1);
        assert!(restored.get(b"apple").is_some());
        assert_eq!(restored.revision(), 2);

        let mut merged = KvStore::new();
        merged.restore_merged(&[lo_snap, hi_snap]).unwrap();
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn restore_merged_rejects_overlap() {
        let mut store = KvStore::new();
        put(&mut store, LogIndex(1), "k", "v");
        let snap = store.snapshot(&RangeSet::full());
        let mut merged = KvStore::new();
        assert!(merged.restore_merged(&[snap.clone(), snap]).is_err());
    }

    #[test]
    fn ingest_bulk_loads_snapshot_payload() {
        let mut src = KvStore::new();
        put(&mut src, LogIndex(1), "a", "1");
        put(&mut src, LogIndex(2), "b", "2");
        let snap = src.snapshot(&RangeSet::full());
        let mut dst = KvStore::new();
        put(&mut dst, LogIndex(1), "z", "9");
        dst.apply(LogIndex(2), &KvCmd::Ingest { data: snap }.encode());
        assert_eq!(dst.len(), 3, "ingest adds the snapshot's pairs");
        assert_eq!(dst.get(b"a"), Some(&Bytes::from_static(b"1")));
        assert_eq!(dst.get(b"z"), Some(&Bytes::from_static(b"9")));
    }

    #[test]
    fn query_reads_applied_state_without_revision_bump() {
        let mut store = KvStore::new();
        put(&mut store, LogIndex(1), "a", "1");
        let raw = store.query(b"a");
        assert_eq!(
            KvResp::decode(&raw).unwrap(),
            KvResp::Value {
                revision: 1,
                value: Some(Bytes::from_static(b"1"))
            }
        );
        let missing = store.query(b"nope");
        assert_eq!(
            KvResp::decode(&missing).unwrap(),
            KvResp::Value {
                revision: 1,
                value: None
            }
        );
        assert_eq!(store.revision(), 1, "queries do not consume revisions");
    }

    #[test]
    fn retain_ranges_prunes() {
        let mut store = KvStore::new();
        put(&mut store, LogIndex(1), "apple", "red");
        put(&mut store, LogIndex(2), "zebra", "striped");
        let (lo, _) = KeyRange::full().split_at(b"m").unwrap();
        store.retain_ranges(&RangeSet::from(lo));
        assert_eq!(store.len(), 1);
        assert!(store.get(b"zebra").is_none());
    }

    #[test]
    fn data_size_counts_bytes() {
        let mut store = KvStore::new();
        put(&mut store, LogIndex(1), "abc", "wxyz");
        assert_eq!(store.data_size(), 7);
    }

    #[test]
    fn apply_batch_matches_sequential_apply() {
        use recraft_core::StateMachine as _;
        let cmds: Vec<Bytes> = vec![
            KvCmd::Put {
                key: b"a".to_vec(),
                value: Bytes::from_static(b"1"),
            }
            .encode(),
            KvCmd::Get {
                key: b"a".to_vec(),
                nonce: 7,
            }
            .encode(),
            Bytes::from_static(b"\xFF\xFF"), // malformed still consumes a slot
            KvCmd::Delete {
                key: b"a".to_vec(),
                nonce: 8,
            }
            .encode(),
            KvCmd::Get {
                key: b"a".to_vec(),
                nonce: 9,
            }
            .encode(),
        ];
        let mut seq = KvStore::new();
        let seq_resps: Vec<Bytes> = cmds
            .iter()
            .enumerate()
            .map(|(i, c)| seq.apply(LogIndex(i as u64 + 1), c))
            .collect();
        let mut batched = KvStore::new();
        let entries: Vec<(LogIndex, Bytes)> = cmds
            .iter()
            .enumerate()
            .map(|(i, c)| (LogIndex(i as u64 + 1), c.clone()))
            .collect();
        let batch_resps = batched.apply_batch(&entries);
        assert_eq!(seq_resps, batch_resps, "byte-identical responses");
        assert_eq!(seq, batched, "identical end state");
        assert_eq!(batched.revision(), cmds.len() as u64);
    }

    #[test]
    fn malformed_command_is_deterministic() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        let junk = Bytes::from_static(b"\xFF\xFF");
        let ra = a.apply(LogIndex(1), &junk);
        let rb = b.apply(LogIndex(1), &junk);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }
}
