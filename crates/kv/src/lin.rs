//! Linearizability witness checking.
//!
//! The simulator records a client *history* (invocation and response times
//! for every operation) and, independently, the *witness order* in which
//! commands were applied to the replicated state machine (the log order).
//! [`check_history`] verifies that the witness order is a valid
//! linearization of the history:
//!
//! 1. **Real-time order** — if operation A responded before operation B was
//!    invoked, A must precede B in the witness order.
//! 2. **Read semantics** — every read returns the value of the latest
//!    preceding write to its key in the witness order (or `None`).
//!
//! Verifying a supplied witness avoids the NP-hardness of general
//! linearizability checking while remaining a complete proof for the runs we
//! produce. Operations that never completed (client never got a response)
//! are allowed to appear or be absent — if present they must still respect
//! their invocation time.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// A unique operation id: `(client id, request id)`.
pub type OpId = (u64, u64);

/// What the operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Wrote `value`.
    Write {
        /// Value written.
        value: Bytes,
    },
    /// Read and observed `value` (`None` = key absent).
    Read {
        /// Value observed.
        value: Option<Bytes>,
    },
    /// Deleted the key.
    Delete,
}

/// One client operation with its real-time bounds.
#[derive(Debug, Clone)]
pub struct Op {
    /// Unique id.
    pub id: OpId,
    /// Key touched.
    pub key: Vec<u8>,
    /// What happened.
    pub kind: OpKind,
    /// Invocation time (µs).
    pub invoked_at: u64,
    /// Response time (µs); `None` if the client never heard back.
    pub responded_at: Option<u64>,
}

/// A violation found by the checker.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The witness order contradicts real time: `first` responded before
    /// `second` was invoked, yet `second` precedes it.
    RealTimeOrder {
        /// The earlier (by response) operation.
        first: OpId,
        /// The later (by invocation) operation.
        second: OpId,
    },
    /// A read observed a value inconsistent with the witness order.
    StaleRead {
        /// The read operation.
        read: OpId,
        /// What the witness order says it should have seen.
        expected: Option<Bytes>,
        /// What it actually returned.
        actual: Option<Bytes>,
    },
    /// An operation appears in the witness order but not in the history (or
    /// the other way around for completed operations).
    MissingOp {
        /// The missing operation.
        op: OpId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RealTimeOrder { first, second } => write!(
                f,
                "real-time order violated: {first:?} responded before {second:?} was invoked \
                 but follows it in the witness order"
            ),
            Violation::StaleRead {
                read,
                expected,
                actual,
            } => write!(
                f,
                "stale read {read:?}: expected {expected:?}, observed {actual:?}"
            ),
            Violation::MissingOp { op } => write!(f, "operation {op:?} missing"),
        }
    }
}

/// Checks that `witness` (the apply order of operation ids) linearizes
/// `history`. Returns all violations found (empty = linearizable).
#[must_use]
pub fn check_history(history: &[Op], witness: &[OpId]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let by_id: BTreeMap<OpId, &Op> = history.iter().map(|op| (op.id, op)).collect();
    let mut position: BTreeMap<OpId, usize> = BTreeMap::new();
    for (i, id) in witness.iter().enumerate() {
        position.insert(*id, i);
    }

    // 1. Completed operations must appear in the witness order.
    for op in history {
        if op.responded_at.is_some() && !position.contains_key(&op.id) {
            violations.push(Violation::MissingOp { op: op.id });
        }
    }

    // 2. Real-time order: sort completed ops by response time and verify
    //    witness positions are consistent with non-overlapping pairs.
    let mut completed: Vec<&Op> = history
        .iter()
        .filter(|o| o.responded_at.is_some())
        .collect();
    completed.sort_by_key(|o| o.responded_at.unwrap());
    // For efficiency, track the maximum witness position among all ops that
    // responded before each invocation time.
    let mut events: Vec<(u64, bool, &Op)> = Vec::new(); // (time, is_response, op)
    for op in history {
        events.push((op.invoked_at, false, op));
        if let Some(t) = op.responded_at {
            events.push((t, true, op));
        }
    }
    events.sort_by_key(|(t, is_resp, op)| (*t, !is_resp, op.id));
    let mut max_finished_pos: Option<(usize, OpId)> = None;
    for (_, is_response, op) in events {
        if is_response {
            if let Some(pos) = position.get(&op.id) {
                if max_finished_pos.is_none_or(|(p, _)| *pos > p) {
                    max_finished_pos = Some((*pos, op.id));
                }
            }
        } else if let (Some((max_pos, max_id)), Some(pos)) =
            (max_finished_pos, position.get(&op.id))
        {
            if *pos < max_pos {
                violations.push(Violation::RealTimeOrder {
                    first: max_id,
                    second: op.id,
                });
            }
        }
    }

    // 3. Read semantics along the witness order.
    let mut state: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
    for id in witness {
        let Some(op) = by_id.get(id) else {
            violations.push(Violation::MissingOp { op: *id });
            continue;
        };
        match &op.kind {
            OpKind::Write { value } => {
                state.insert(op.key.clone(), value.clone());
            }
            OpKind::Delete => {
                state.remove(&op.key);
            }
            OpKind::Read { value } => {
                // A read whose response never reached the client recorded no
                // observation; it constrains nothing.
                if op.responded_at.is_some() {
                    let expected = state.get(&op.key).cloned();
                    if &expected != value {
                        violations.push(Violation::StaleRead {
                            read: op.id,
                            expected,
                            actual: value.clone(),
                        });
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(id: OpId, key: &str, value: &str, invoked: u64, responded: u64) -> Op {
        Op {
            id,
            key: key.as_bytes().to_vec(),
            kind: OpKind::Write {
                value: Bytes::from(value.to_string()),
            },
            invoked_at: invoked,
            responded_at: Some(responded),
        }
    }

    fn read(id: OpId, key: &str, value: Option<&str>, invoked: u64, responded: u64) -> Op {
        Op {
            id,
            key: key.as_bytes().to_vec(),
            kind: OpKind::Read {
                value: value.map(|v| Bytes::from(v.to_string())),
            },
            invoked_at: invoked,
            responded_at: Some(responded),
        }
    }

    #[test]
    fn accepts_sequential_history() {
        let history = vec![
            write((1, 1), "k", "a", 0, 10),
            read((2, 1), "k", Some("a"), 20, 30),
            write((1, 2), "k", "b", 40, 50),
            read((2, 2), "k", Some("b"), 60, 70),
        ];
        let witness = vec![(1, 1), (2, 1), (1, 2), (2, 2)];
        assert!(check_history(&history, &witness).is_empty());
    }

    #[test]
    fn rejects_time_travel() {
        // (1,1) responded at 10; (2,1) invoked at 20 — the witness must not
        // order (2,1) first.
        let history = vec![
            write((1, 1), "k", "a", 0, 10),
            write((2, 1), "k", "b", 20, 30),
        ];
        let witness = vec![(2, 1), (1, 1)];
        let v = check_history(&history, &witness);
        assert!(matches!(v.as_slice(), [Violation::RealTimeOrder { .. }]));
    }

    #[test]
    fn accepts_concurrent_reordering() {
        // Overlapping in real time: either order is fine.
        let history = vec![
            write((1, 1), "k", "a", 0, 100),
            write((2, 1), "k", "b", 0, 100),
        ];
        assert!(check_history(&history, &[(1, 1), (2, 1)]).is_empty());
        assert!(check_history(&history, &[(2, 1), (1, 1)]).is_empty());
    }

    #[test]
    fn rejects_stale_read() {
        let history = vec![
            write((1, 1), "k", "a", 0, 10),
            write((1, 2), "k", "b", 20, 30),
            read((2, 1), "k", Some("a"), 40, 50), // should see "b"
        ];
        let witness = vec![(1, 1), (1, 2), (2, 1)];
        let v = check_history(&history, &witness);
        assert!(matches!(v.as_slice(), [Violation::StaleRead { .. }]));
    }

    #[test]
    fn rejects_phantom_read() {
        let history = vec![read((2, 1), "k", Some("ghost"), 0, 10)];
        let witness = vec![(2, 1)];
        let v = check_history(&history, &witness);
        assert!(matches!(v.as_slice(), [Violation::StaleRead { .. }]));
    }

    #[test]
    fn completed_op_must_appear() {
        let history = vec![write((1, 1), "k", "a", 0, 10)];
        let v = check_history(&history, &[]);
        assert!(matches!(v.as_slice(), [Violation::MissingOp { .. }]));
    }

    #[test]
    fn incomplete_op_may_be_absent() {
        let mut op = write((1, 1), "k", "a", 0, 10);
        op.responded_at = None;
        assert!(check_history(&[op], &[]).is_empty());
    }

    #[test]
    fn delete_clears_value() {
        let history = vec![
            write((1, 1), "k", "a", 0, 10),
            Op {
                id: (1, 2),
                key: b"k".to_vec(),
                kind: OpKind::Delete,
                invoked_at: 20,
                responded_at: Some(30),
            },
            read((2, 1), "k", None, 40, 50),
        ];
        let witness = vec![(1, 1), (1, 2), (2, 1)];
        assert!(check_history(&history, &witness).is_empty());
    }
}
