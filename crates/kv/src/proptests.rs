//! Property tests for [`DurableKv`]: under arbitrary op sequences with
//! interleaved flushes it is observationally identical to the in-memory
//! [`KvStore`], reopen reproduces exactly the flushed image (the persisted
//! applied-index watermark included), and torn segment tails from a power
//! cut never corrupt recovery — mirroring the storage crate's `LogStore`
//! proptest suite.

use crate::durable::testdir::TestDir;
use crate::durable::{DurableKv, DurableKvOptions};
use crate::store::{KvCmd, KvStore};
use bytes::Bytes;
use proptest::prelude::*;
use recraft_core::StateMachine;
use recraft_types::{LogIndex, RangeSet};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
    /// Explicit flush (organic threshold flushes also fire on their own).
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 32, v)),
        2 => any::<u8>().prop_map(|k| Op::Delete(k % 32)),
        2 => any::<u8>().prop_map(|k| Op::Get(k % 32)),
        1 => Just(Op::Flush),
    ]
}

fn opts() -> DurableKvOptions {
    DurableKvOptions {
        fsync: false,
        chunk_bytes: 96,     // tiny: every state partitions into many files
        memtable_bytes: 160, // tiny: organic flushes interleave with ops
    }
}

fn cmd_of(op: &Op, i: u64) -> Option<Bytes> {
    match op {
        Op::Put(k, v) => Some(
            KvCmd::Put {
                key: format!("key-{k:03}").into_bytes(),
                value: Bytes::from(format!("value-{v}-{i}")),
            }
            .encode(),
        ),
        Op::Delete(k) => Some(
            KvCmd::Delete {
                key: format!("key-{k:03}").into_bytes(),
                nonce: i,
            }
            .encode(),
        ),
        Op::Get(k) => Some(
            KvCmd::Get {
                key: format!("key-{k:03}").into_bytes(),
                nonce: i,
            }
            .encode(),
        ),
        Op::Flush => None,
    }
}

/// The full observable image of a store, for exact equality checks.
fn image(len: usize, revision: u64, snapshot: Bytes) -> (usize, u64, Bytes) {
    (len, revision, snapshot)
}

proptest! {
    /// Durable and in-memory machines answer byte-identically and hold the
    /// same state under arbitrary op/flush interleavings, and reopening the
    /// durable store after a clean flush reproduces the exact image with
    /// its watermark.
    #[test]
    fn reopen_equivalence_under_op_sequences(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let dir = TestDir::new("prop-equiv");
        let mut durable = DurableKv::create(&dir.0, KvStore::new(), opts()).unwrap();
        let mut mem = KvStore::new();
        let mut index = 0u64;
        for op in &ops {
            match cmd_of(op, index) {
                Some(cmd) => {
                    index += 1;
                    let i = LogIndex(index);
                    prop_assert_eq!(
                        durable.apply(i, &cmd),
                        mem.apply(i, &cmd),
                        "responses diverge at {}", i
                    );
                }
                None => durable.flush(),
            }
        }
        prop_assert_eq!(durable.len(), mem.len());
        prop_assert_eq!(durable.revision(), mem.revision());
        prop_assert_eq!(
            durable.snapshot(&RangeSet::full()),
            mem.snapshot(&RangeSet::full())
        );
        // Chunks reassemble into the same image on a fresh store.
        let chunks = durable.snapshot_chunks(&RangeSet::full());
        prop_assert!(!chunks.is_empty());
        let mut rebuilt = KvStore::new();
        rebuilt.restore_merged(
            &chunks.iter().filter(|c| !c.is_empty()).cloned().collect::<Vec<_>>(),
        ).unwrap();
        prop_assert_eq!(rebuilt.len(), mem.len());
        // A clean flush + reopen reproduces the image and the watermark.
        durable.flush();
        let want = image(mem.len(), mem.revision(), mem.snapshot(&RangeSet::full()));
        let watermark = durable.watermark();
        prop_assert_eq!(watermark, LogIndex(index));
        drop(durable);
        let reopened = DurableKv::open(&dir.0, opts()).unwrap();
        let got = image(
            reopened.len(),
            reopened.revision(),
            reopened.snapshot(&RangeSet::full()),
        );
        prop_assert_eq!(got, want);
        prop_assert_eq!(reopened.watermark(), watermark);
    }

    /// Power cuts: whatever garbage byte count a torn in-flight write
    /// leaves behind, recovery reproduces exactly the image at the last
    /// flush — never a partial keyspace, never an invented key, and the
    /// watermark tells precisely which prefix survived.
    #[test]
    fn torn_tail_recovers_exactly_the_flushed_image(
        ops in prop::collection::vec(op_strategy(), 1..60),
        tear in 0usize..200,
    ) {
        let dir = TestDir::new("prop-torn");
        let mut durable = DurableKv::create(
            &dir.0,
            KvStore::new(),
            DurableKvOptions {
                memtable_bytes: 1 << 20, // flushes only where the ops say
                ..opts()
            },
        )
        .unwrap();
        let mut mem = KvStore::new();
        let mut flushed = image(0, 0, mem.snapshot(&RangeSet::full()));
        let mut flushed_at = LogIndex::ZERO;
        let mut index = 0u64;
        for op in &ops {
            match cmd_of(op, index) {
                Some(cmd) => {
                    index += 1;
                    let i = LogIndex(index);
                    durable.apply(i, &cmd);
                    mem.apply(i, &cmd);
                }
                None => {
                    durable.flush();
                    flushed = image(mem.len(), mem.revision(), mem.snapshot(&RangeSet::full()));
                    flushed_at = LogIndex(index);
                }
            }
        }
        durable.power_cut(tear);
        drop(durable);
        let recovered = DurableKv::open(&dir.0, opts()).unwrap();
        let got = image(
            recovered.len(),
            recovered.revision(),
            recovered.snapshot(&RangeSet::full()),
        );
        prop_assert_eq!(got, flushed, "recovery == last flushed image");
        prop_assert_eq!(recovered.watermark(), flushed_at);
    }
}
