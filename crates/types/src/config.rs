//! Cluster configurations and the special log entries that change them.
//!
//! A configuration `C` is a member set, a quorum rule, and the key ranges the
//! cluster owns. Reconfigurations are ordinary log entries carrying a
//! [`ConfigChange`] payload; per Raft's wait-free scheme they take effect as
//! soon as they are *appended* (with the split/merge refinements described in
//! `recraft-core`).

use crate::codec::{Decode, Encode};
use crate::error::{Error, Result};
use crate::ids::{ClusterId, NodeId, TxId};
use crate::range::RangeSet;
use bytes::{Bytes, BytesMut};
use std::collections::BTreeSet;
use std::fmt;

/// The majority quorum size for an `n`-node cluster: `⌊n/2⌋ + 1`.
///
/// # Example
/// ```
/// use recraft_types::config::majority;
/// assert_eq!(majority(3), 2);
/// assert_eq!(majority(4), 3);
/// assert_eq!(majority(5), 3);
/// ```
#[must_use]
pub fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// The intermediate quorum size `Q_new-q` of ReCraft's membership change
/// (§IV-A): the smallest quorum over the *new* member set that forces every
/// quorum of `C_new-q` to overlap every majority quorum of `C_old`.
///
/// For additions this is the paper's `N_old + n − Q_old + 1`; for removals
/// (members of `C_new` ⊆ `C_old`) the overlap bound is governed by `N_old`,
/// giving `N_old − Q_old + 1` (see DESIGN.md §7 on the paper's formula).
/// The unified form is `max(N_old, N_new) − Q_old + 1`.
///
/// # Example
/// ```
/// use recraft_types::config::{majority, resize_quorum};
/// // Figure 1c: 2-node cluster (Q=2) grows to 5 nodes in one step.
/// assert_eq!(resize_quorum(2, 2, 5), 4);
/// // Adding one node to a 3-node cluster: Q_new-q equals the majority, so a
/// // single consensus step suffices (matches AR-RPC).
/// assert_eq!(resize_quorum(3, 2, 4), majority(4));
/// ```
#[must_use]
pub fn resize_quorum(n_old: usize, q_old: usize, n_new: usize) -> usize {
    n_old.max(n_new) - q_old + 1
}

/// How a configuration counts quorums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuorumRule {
    /// The usual Raft majority of the member set.
    #[default]
    Majority,
    /// A fixed quorum size (used by the intermediate `C_new-q` configuration
    /// of Add/RemoveAndResize). Never smaller than the majority.
    Fixed(usize),
}

/// The configuration of one (sub)cluster: its identity, members, quorum rule
/// and the key ranges it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    id: ClusterId,
    members: BTreeSet<NodeId>,
    quorum: QuorumRule,
    ranges: RangeSet,
}

impl ClusterConfig {
    /// Creates a configuration with a majority quorum.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the member set is empty.
    pub fn new(
        id: ClusterId,
        members: impl IntoIterator<Item = NodeId>,
        ranges: RangeSet,
    ) -> Result<Self> {
        let members: BTreeSet<NodeId> = members.into_iter().collect();
        if members.is_empty() {
            return Err(Error::InvalidConfig("empty member set".into()));
        }
        Ok(ClusterConfig {
            id,
            members,
            quorum: QuorumRule::Majority,
            ranges,
        })
    }

    /// Creates a configuration with an explicit fixed quorum size, as used by
    /// the intermediate `C_new-q` step.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the member set is empty or the
    /// quorum is smaller than the majority or larger than the cluster
    /// (ReCraft quorums "can temporarily grow larger than the majority but
    /// never smaller", §III-A).
    pub fn with_quorum(
        id: ClusterId,
        members: impl IntoIterator<Item = NodeId>,
        ranges: RangeSet,
        quorum: usize,
    ) -> Result<Self> {
        let mut cfg = ClusterConfig::new(id, members, ranges)?;
        let n = cfg.members.len();
        if quorum < majority(n) || quorum > n {
            return Err(Error::InvalidConfig(format!(
                "quorum {quorum} out of [majority {}..={n}]",
                majority(n)
            )));
        }
        if quorum != majority(n) {
            cfg.quorum = QuorumRule::Fixed(quorum);
        }
        Ok(cfg)
    }

    /// The cluster id.
    #[must_use]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The member node set.
    #[must_use]
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// The number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the member set is empty (never true for validated configs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` is a member.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// The key ranges this cluster serves.
    #[must_use]
    pub fn ranges(&self) -> &RangeSet {
        &self.ranges
    }

    /// The quorum rule.
    #[must_use]
    pub fn quorum_rule(&self) -> QuorumRule {
        self.quorum
    }

    /// The effective quorum size.
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        match self.quorum {
            QuorumRule::Majority => majority(self.members.len()),
            QuorumRule::Fixed(q) => q,
        }
    }

    /// Whether `votes ∩ members` reaches the quorum.
    #[must_use]
    pub fn is_quorum(&self, votes: &BTreeSet<NodeId>) -> bool {
        votes.intersection(&self.members).count() >= self.quorum_size()
    }

    /// The number of node failures the configuration tolerates:
    /// `f = n − q` (§III-A).
    #[must_use]
    pub fn fault_tolerance(&self) -> usize {
        self.members.len() - self.quorum_size()
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}} q={}", self.quorum_size())
    }
}

/// The plan for splitting one cluster into `≥ 2` subclusters (the payload of
/// both the `Cjoint` and `Cnew` entries — "Cjoint ... has the same
/// information as Cnew", §III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSpec {
    subclusters: Vec<ClusterConfig>,
}

impl SplitSpec {
    /// Validates and creates a split plan.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] unless there are at least two
    /// subclusters with pairwise-disjoint member sets, pairwise-disjoint
    /// ranges, members drawn from `parent_members`, and ranges covered by
    /// `parent_ranges`.
    pub fn new(
        subclusters: Vec<ClusterConfig>,
        parent_members: &BTreeSet<NodeId>,
        parent_ranges: &RangeSet,
    ) -> Result<Self> {
        if subclusters.len() < 2 {
            return Err(Error::InvalidConfig(
                "split needs at least two subclusters".into(),
            ));
        }
        let mut seen_members: BTreeSet<NodeId> = BTreeSet::new();
        let mut combined = RangeSet::empty();
        let mut ids: BTreeSet<ClusterId> = BTreeSet::new();
        for sub in &subclusters {
            if !ids.insert(sub.id()) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate subcluster id {}",
                    sub.id()
                )));
            }
            for m in sub.members() {
                if !parent_members.contains(m) {
                    return Err(Error::InvalidConfig(format!(
                        "subcluster member {m} not in parent cluster"
                    )));
                }
                if !seen_members.insert(*m) {
                    return Err(Error::InvalidConfig(format!(
                        "node {m} assigned to two subclusters"
                    )));
                }
            }
            combined = combined
                .union(sub.ranges())
                .map_err(|_| Error::InvalidConfig("subcluster ranges overlap".into()))?;
        }
        for r in combined.ranges() {
            if !parent_ranges.contains(r.start()) {
                return Err(Error::InvalidConfig(format!(
                    "subcluster range {r} outside parent ranges"
                )));
            }
        }
        Ok(SplitSpec { subclusters })
    }

    /// The planned subcluster configurations.
    #[must_use]
    pub fn subclusters(&self) -> &[ClusterConfig] {
        &self.subclusters
    }

    /// The subcluster (if any) that `node` belongs to after the split — the
    /// node's `Csub` extracted from `Cnew` (§III-B: "the node extracts its
    /// own Csub.i from Cnew and applies it").
    #[must_use]
    pub fn subcluster_of(&self, node: NodeId) -> Option<&ClusterConfig> {
        self.subclusters.iter().find(|c| c.contains(node))
    }

    /// All member nodes across the subclusters.
    #[must_use]
    pub fn all_members(&self) -> BTreeSet<NodeId> {
        self.subclusters
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect()
    }
}

/// One participant of a merge transaction as known to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeParticipant {
    /// The participant cluster's id.
    pub cluster: ClusterId,
    /// The participant cluster's member nodes (from the naming service or the
    /// admin request).
    pub members: BTreeSet<NodeId>,
}

/// The merge transaction intent `C_TX` (§III-C1): which clusters merge, who
/// coordinates, and the identity of the resulting cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeTx {
    /// Unique transaction id ("2PC transactions are designed to be idempotent
    /// using unique ids").
    pub id: TxId,
    /// The coordinating subcluster.
    pub coordinator: ClusterId,
    /// Every merging subcluster, including the coordinator.
    pub participants: Vec<MergeParticipant>,
    /// The id the merged cluster will adopt.
    pub new_cluster: ClusterId,
    /// Optional resumption subset (§III-C2 "Resizing the Merged Cluster"):
    /// must be a union of whole subcluster member sets so the resumed quorum
    /// overlaps the combined quorums of all `Csub`s.
    pub resume_members: Option<BTreeSet<NodeId>>,
}

impl MergeTx {
    /// Validates the transaction shape.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] unless there are ≥ 2 participants
    /// with disjoint member sets, the coordinator is a participant, and any
    /// `resume_members` is a union of whole participant member sets.
    pub fn validate(&self) -> Result<()> {
        if self.participants.len() < 2 {
            return Err(Error::InvalidConfig(
                "merge needs at least two participants".into(),
            ));
        }
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut ids: BTreeSet<ClusterId> = BTreeSet::new();
        for p in &self.participants {
            if !ids.insert(p.cluster) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate merge participant {}",
                    p.cluster
                )));
            }
            for m in &p.members {
                if !seen.insert(*m) {
                    return Err(Error::InvalidConfig(format!(
                        "node {m} in two merge participants"
                    )));
                }
            }
        }
        if !ids.contains(&self.coordinator) {
            return Err(Error::InvalidConfig(
                "coordinator is not a merge participant".into(),
            ));
        }
        if let Some(resume) = &self.resume_members {
            // The safety requirement: the resumed member set must be a union
            // of whole subclusters ("selecting all members of one or more
            // Csubs as the resized cluster fulfills this", §III-C2).
            let mut covered: BTreeSet<NodeId> = BTreeSet::new();
            for p in &self.participants {
                if p.members.is_subset(resume) {
                    covered.extend(p.members.iter().copied());
                }
            }
            if covered != *resume || covered.is_empty() {
                return Err(Error::InvalidConfig(
                    "resume_members must be a union of whole subclusters".into(),
                ));
            }
        }
        Ok(())
    }

    /// The full member set of the merged cluster before any resumption
    /// resize.
    #[must_use]
    pub fn all_members(&self) -> BTreeSet<NodeId> {
        self.participants
            .iter()
            .flat_map(|p| p.members.iter().copied())
            .collect()
    }

    /// The member set the merged cluster resumes with.
    #[must_use]
    pub fn resumed_members(&self) -> BTreeSet<NodeId> {
        self.resume_members
            .clone()
            .unwrap_or_else(|| self.all_members())
    }

    /// The participant entry for `cluster`, if present.
    #[must_use]
    pub fn participant(&self, cluster: ClusterId) -> Option<&MergeParticipant> {
        self.participants.iter().find(|p| p.cluster == cluster)
    }
}

/// A participant's local vote on a merge transaction, recorded in its log
/// ("Even when the cluster votes NO, the decision must be recorded", §III-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeDecision {
    /// The cluster agrees to merge.
    Ok,
    /// The cluster refuses (typically P1: an ongoing reconfiguration).
    No,
}

/// The finalized outcome of a merge transaction (phase 2 of the 2PC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeOutcome {
    /// All participants voted OK: the merged configuration `Cnew`.
    Commit {
        /// The transaction being finalized.
        tx: MergeTx,
        /// Combined key ranges of all participants.
        ranges: RangeSet,
        /// `E_new = max(E_i) + 1`, collected during the prepare phase.
        new_epoch: u32,
    },
    /// At least one participant voted NO: `Cabort` nullifying the
    /// transaction.
    Abort {
        /// The transaction being aborted.
        tx_id: TxId,
    },
}

impl MergeOutcome {
    /// The transaction id this outcome finalizes.
    #[must_use]
    pub fn tx_id(&self) -> TxId {
        match self {
            MergeOutcome::Commit { tx, .. } => tx.id,
            MergeOutcome::Abort { tx_id } => *tx_id,
        }
    }
}

/// The payload of a configuration-change log entry.
///
/// The first three variants are the *baseline* Raft schemes the paper
/// compares against (§II-A2); the rest are ReCraft's contributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigChange {
    /// Vanilla Add/RemoveServer RPC: a new member set differing from the old
    /// by exactly one node, majority quorum (baseline).
    Simple { members: BTreeSet<NodeId> },
    /// Vanilla joint consensus, phase 1: `C_old,new` (baseline). Decisions
    /// need majorities of both `old` and `new`.
    JointEnter {
        old: BTreeSet<NodeId>,
        new: BTreeSet<NodeId>,
    },
    /// Vanilla joint consensus, phase 2: `C_new` (baseline).
    JointLeave { new: BTreeSet<NodeId> },
    /// ReCraft Add/RemoveAndResize and ResizeQuorum (§IV-A): the new member
    /// set with an explicit quorum size. `AddAndResize`/`RemoveAndResize`
    /// carry `quorum = Q_new-q`; `ResizeQuorum` carries the majority.
    Resize {
        members: BTreeSet<NodeId>,
        quorum: usize,
    },
    /// ReCraft split, phase 1: enter the joint mode with `Cjoint` (§III-B).
    SplitJoint(SplitSpec),
    /// ReCraft split, phase 2: `Cnew`; committing it completes the split.
    SplitNew(SplitSpec),
    /// ReCraft merge, 2PC phase 1: the transaction intent with this cluster's
    /// local decision (`C_TX'`).
    MergePrepare {
        tx: MergeTx,
        decision: MergeDecision,
    },
    /// ReCraft merge, 2PC phase 2: `Cnew` or `Cabort`.
    MergeCommit(MergeOutcome),
    /// Replace the key ranges this cluster serves (no membership or quorum
    /// change). Not part of ReCraft itself — this is the "commit a new
    /// subrange command" primitive the TiKV/CockroachDB-style external
    /// cluster manager drives (§II-C), used by the TC baseline.
    SetRanges(RangeSet),
}

impl ConfigChange {
    /// A short human-readable tag for traces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigChange::Simple { .. } => "simple",
            ConfigChange::JointEnter { .. } => "joint-enter",
            ConfigChange::JointLeave { .. } => "joint-leave",
            ConfigChange::Resize { .. } => "resize",
            ConfigChange::SplitJoint(_) => "split-joint",
            ConfigChange::SplitNew(_) => "split-new",
            ConfigChange::MergePrepare { .. } => "merge-prepare",
            ConfigChange::MergeCommit(_) => "merge-commit",
            ConfigChange::SetRanges(_) => "set-ranges",
        }
    }
}

// ---- Binary codecs ---------------------------------------------------------
//
// Configuration changes ride in persisted log entries (the WAL backend) and
// in snapshot metadata, so everything reachable from [`ConfigChange`] has a
// binary form. Decoding re-validates through the public constructors wherever
// an invariant exists, so corrupt or adversarial bytes can never produce a
// configuration the validators would have rejected.

impl Encode for ClusterConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.members.encode(buf);
        match self.quorum {
            QuorumRule::Majority => None,
            QuorumRule::Fixed(q) => Some(q as u64),
        }
        .encode(buf);
        self.ranges.encode(buf);
    }
}

impl Decode for ClusterConfig {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let id = ClusterId::decode(buf)?;
        let members = BTreeSet::<NodeId>::decode(buf)?;
        let fixed = Option::<u64>::decode(buf)?;
        let ranges = RangeSet::decode(buf)?;
        match fixed {
            None => ClusterConfig::new(id, members, ranges),
            Some(q) => ClusterConfig::with_quorum(id, members, ranges, q as usize),
        }
        .map_err(|e| Error::Codec(format!("invalid persisted ClusterConfig: {e}")))
    }
}

impl Encode for SplitSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.subclusters.encode(buf);
    }
}

impl Decode for SplitSpec {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let subclusters = Vec::<ClusterConfig>::decode(buf)?;
        // Re-validate against the loosest parent (the union of everything in
        // the spec): disjointness and the two-subcluster minimum still hold.
        let parent_members: BTreeSet<NodeId> = subclusters
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        SplitSpec::new(subclusters, &parent_members, &RangeSet::full())
            .map_err(|e| Error::Codec(format!("invalid persisted SplitSpec: {e}")))
    }
}

impl Encode for MergeParticipant {
    fn encode(&self, buf: &mut BytesMut) {
        self.cluster.encode(buf);
        self.members.encode(buf);
    }
}

impl Decode for MergeParticipant {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(MergeParticipant {
            cluster: ClusterId::decode(buf)?,
            members: BTreeSet::decode(buf)?,
        })
    }
}

impl Encode for MergeTx {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.coordinator.encode(buf);
        self.participants.encode(buf);
        self.new_cluster.encode(buf);
        self.resume_members.encode(buf);
    }
}

impl Decode for MergeTx {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let tx = MergeTx {
            id: TxId::decode(buf)?,
            coordinator: ClusterId::decode(buf)?,
            participants: Vec::decode(buf)?,
            new_cluster: ClusterId::decode(buf)?,
            resume_members: Option::decode(buf)?,
        };
        tx.validate()
            .map_err(|e| Error::Codec(format!("invalid persisted MergeTx: {e}")))?;
        Ok(tx)
    }
}

impl Encode for MergeDecision {
    fn encode(&self, buf: &mut BytesMut) {
        matches!(self, MergeDecision::Ok).encode(buf);
    }
}

impl Decode for MergeDecision {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(if bool::decode(buf)? {
            MergeDecision::Ok
        } else {
            MergeDecision::No
        })
    }
}

impl Encode for MergeOutcome {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MergeOutcome::Commit {
                tx,
                ranges,
                new_epoch,
            } => {
                0u8.encode(buf);
                tx.encode(buf);
                ranges.encode(buf);
                new_epoch.encode(buf);
            }
            MergeOutcome::Abort { tx_id } => {
                1u8.encode(buf);
                tx_id.encode(buf);
            }
        }
    }
}

impl Decode for MergeOutcome {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(match u8::decode(buf)? {
            0 => MergeOutcome::Commit {
                tx: MergeTx::decode(buf)?,
                ranges: RangeSet::decode(buf)?,
                new_epoch: u32::decode(buf)?,
            },
            1 => MergeOutcome::Abort {
                tx_id: TxId::decode(buf)?,
            },
            t => return Err(Error::Codec(format!("unknown MergeOutcome tag {t}"))),
        })
    }
}

impl Encode for ConfigChange {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ConfigChange::Simple { members } => {
                0u8.encode(buf);
                members.encode(buf);
            }
            ConfigChange::JointEnter { old, new } => {
                1u8.encode(buf);
                old.encode(buf);
                new.encode(buf);
            }
            ConfigChange::JointLeave { new } => {
                2u8.encode(buf);
                new.encode(buf);
            }
            ConfigChange::Resize { members, quorum } => {
                3u8.encode(buf);
                members.encode(buf);
                (*quorum as u64).encode(buf);
            }
            ConfigChange::SplitJoint(spec) => {
                4u8.encode(buf);
                spec.encode(buf);
            }
            ConfigChange::SplitNew(spec) => {
                5u8.encode(buf);
                spec.encode(buf);
            }
            ConfigChange::MergePrepare { tx, decision } => {
                6u8.encode(buf);
                tx.encode(buf);
                decision.encode(buf);
            }
            ConfigChange::MergeCommit(outcome) => {
                7u8.encode(buf);
                outcome.encode(buf);
            }
            ConfigChange::SetRanges(ranges) => {
                8u8.encode(buf);
                ranges.encode(buf);
            }
        }
    }
}

impl Decode for ConfigChange {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(match u8::decode(buf)? {
            0 => ConfigChange::Simple {
                members: BTreeSet::decode(buf)?,
            },
            1 => ConfigChange::JointEnter {
                old: BTreeSet::decode(buf)?,
                new: BTreeSet::decode(buf)?,
            },
            2 => ConfigChange::JointLeave {
                new: BTreeSet::decode(buf)?,
            },
            3 => ConfigChange::Resize {
                members: BTreeSet::decode(buf)?,
                quorum: u64::decode(buf)? as usize,
            },
            4 => ConfigChange::SplitJoint(SplitSpec::decode(buf)?),
            5 => ConfigChange::SplitNew(SplitSpec::decode(buf)?),
            6 => ConfigChange::MergePrepare {
                tx: MergeTx::decode(buf)?,
                decision: MergeDecision::decode(buf)?,
            },
            7 => ConfigChange::MergeCommit(MergeOutcome::decode(buf)?),
            8 => ConfigChange::SetRanges(RangeSet::decode(buf)?),
            t => return Err(Error::Codec(format!("unknown ConfigChange tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::KeyRange;

    fn nodes(ids: &[u64]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn majority_values() {
        let expected = [
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (5, 3),
            (6, 4),
            (7, 4),
            (9, 5),
        ];
        for (n, q) in expected {
            assert_eq!(majority(n), q, "majority({n})");
        }
    }

    #[test]
    fn resize_quorum_matches_paper_add_formula() {
        // Q_new-q = N_old + n − Q_old + 1 for additions.
        for n_old in 1..=9usize {
            let q_old = majority(n_old);
            for added in 0..=6usize {
                let n_new = n_old + added;
                assert_eq!(
                    resize_quorum(n_old, q_old, n_new),
                    n_old + added - q_old + 1
                );
            }
        }
    }

    #[test]
    fn resize_quorum_overlap_property() {
        // Any Q_old-subset of C_old and any Q_new-q-subset of C_new must
        // intersect. With one side's members contained in the other's, they
        // can be disjoint only if q_old + q_newq <= max(n_old, n_new).
        for n_old in 1..=9usize {
            let q_old = majority(n_old);
            for n_new in 1..=9usize {
                let q = resize_quorum(n_old, q_old, n_new);
                assert!(
                    q_old + q > n_old.max(n_new),
                    "no overlap for {n_old}->{n_new}"
                );
                // Minimality: one less would allow disjoint quorums.
                assert!(q_old + (q - 1) <= n_old.max(n_new));
            }
        }
    }

    #[test]
    fn remove_cap_is_r_less_than_q_old() {
        // Feasible single-step removal requires Q_new-q <= N_new, which
        // reproduces the paper's cap r < Q_old.
        for n_old in 2..=9usize {
            let q_old = majority(n_old);
            for r in 1..n_old {
                let n_new = n_old - r;
                let feasible = resize_quorum(n_old, q_old, n_new) <= n_new;
                assert_eq!(feasible, r < q_old, "n_old={n_old} r={r}");
            }
        }
    }

    #[test]
    fn cluster_config_quorum() {
        let c = ClusterConfig::new(ClusterId(1), nodes(&[1, 2, 3]), RangeSet::full()).unwrap();
        assert_eq!(c.quorum_size(), 2);
        assert_eq!(c.fault_tolerance(), 1);
        assert!(c.is_quorum(&nodes(&[1, 3])));
        assert!(!c.is_quorum(&nodes(&[1])));
        // Votes from non-members do not count.
        assert!(!c.is_quorum(&nodes(&[1, 9])));
    }

    #[test]
    fn fixed_quorum_bounds() {
        let ok =
            ClusterConfig::with_quorum(ClusterId(1), nodes(&[1, 2, 3, 4, 5]), RangeSet::full(), 4);
        assert_eq!(ok.unwrap().quorum_size(), 4);
        // Below majority: rejected (quorums "never smaller" than majority).
        assert!(ClusterConfig::with_quorum(
            ClusterId(1),
            nodes(&[1, 2, 3, 4, 5]),
            RangeSet::full(),
            2
        )
        .is_err());
        // Above cluster size: rejected.
        assert!(
            ClusterConfig::with_quorum(ClusterId(1), nodes(&[1, 2, 3]), RangeSet::full(), 4)
                .is_err()
        );
    }

    #[test]
    fn empty_member_set_rejected() {
        assert!(ClusterConfig::new(ClusterId(1), [], RangeSet::full()).is_err());
    }

    fn two_way_spec() -> (SplitSpec, BTreeSet<NodeId>) {
        let parent = nodes(&[1, 2, 3, 4, 5, 6]);
        let (lo, hi) = KeyRange::full().split_at(b"m").unwrap();
        let spec = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), nodes(&[1, 2, 3]), RangeSet::from(lo)).unwrap(),
                ClusterConfig::new(ClusterId(11), nodes(&[4, 5, 6]), RangeSet::from(hi)).unwrap(),
            ],
            &parent,
            &RangeSet::full(),
        )
        .unwrap();
        (spec, parent)
    }

    #[test]
    fn split_spec_valid() {
        let (spec, _) = two_way_spec();
        assert_eq!(spec.subclusters().len(), 2);
        assert_eq!(spec.subcluster_of(NodeId(2)).unwrap().id(), ClusterId(10));
        assert_eq!(spec.subcluster_of(NodeId(5)).unwrap().id(), ClusterId(11));
        assert!(spec.subcluster_of(NodeId(9)).is_none());
        assert_eq!(spec.all_members(), nodes(&[1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn split_spec_rejects_overlapping_members() {
        let parent = nodes(&[1, 2, 3, 4]);
        let (lo, hi) = KeyRange::full().split_at(b"m").unwrap();
        let err = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), nodes(&[1, 2]), RangeSet::from(lo)).unwrap(),
                ClusterConfig::new(ClusterId(11), nodes(&[2, 3]), RangeSet::from(hi)).unwrap(),
            ],
            &parent,
            &RangeSet::full(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn split_spec_rejects_foreign_members() {
        let parent = nodes(&[1, 2]);
        let (lo, hi) = KeyRange::full().split_at(b"m").unwrap();
        let err = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), nodes(&[1]), RangeSet::from(lo)).unwrap(),
                ClusterConfig::new(ClusterId(11), nodes(&[7]), RangeSet::from(hi)).unwrap(),
            ],
            &parent,
            &RangeSet::full(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn split_spec_rejects_single_subcluster() {
        let parent = nodes(&[1, 2, 3]);
        let err = SplitSpec::new(
            vec![ClusterConfig::new(ClusterId(10), nodes(&[1, 2, 3]), RangeSet::full()).unwrap()],
            &parent,
            &RangeSet::full(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn split_spec_rejects_overlapping_ranges() {
        let parent = nodes(&[1, 2, 3, 4]);
        let err = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), nodes(&[1, 2]), RangeSet::full()).unwrap(),
                ClusterConfig::new(ClusterId(11), nodes(&[3, 4]), RangeSet::full()).unwrap(),
            ],
            &parent,
            &RangeSet::full(),
        );
        assert!(err.is_err());
    }

    fn merge_tx() -> MergeTx {
        MergeTx {
            id: TxId(1),
            coordinator: ClusterId(10),
            participants: vec![
                MergeParticipant {
                    cluster: ClusterId(10),
                    members: nodes(&[1, 2, 3]),
                },
                MergeParticipant {
                    cluster: ClusterId(11),
                    members: nodes(&[4, 5, 6]),
                },
            ],
            new_cluster: ClusterId(20),
            resume_members: None,
        }
    }

    #[test]
    fn merge_tx_valid() {
        let tx = merge_tx();
        tx.validate().unwrap();
        assert_eq!(tx.all_members(), nodes(&[1, 2, 3, 4, 5, 6]));
        assert_eq!(tx.resumed_members(), tx.all_members());
        assert!(tx.participant(ClusterId(11)).is_some());
        assert!(tx.participant(ClusterId(99)).is_none());
    }

    #[test]
    fn merge_tx_rejects_nonparticipant_coordinator() {
        let mut tx = merge_tx();
        tx.coordinator = ClusterId(99);
        assert!(tx.validate().is_err());
    }

    #[test]
    fn merge_tx_rejects_overlapping_members() {
        let mut tx = merge_tx();
        tx.participants[1].members = nodes(&[3, 4, 5]);
        assert!(tx.validate().is_err());
    }

    #[test]
    fn merge_tx_resume_members_must_be_whole_subclusters() {
        let mut tx = merge_tx();
        tx.resume_members = Some(nodes(&[1, 2, 3]));
        tx.validate().unwrap();
        assert_eq!(tx.resumed_members(), nodes(&[1, 2, 3]));

        // An arbitrary subset (could select only missed-out nodes) is unsafe.
        tx.resume_members = Some(nodes(&[1, 2, 4]));
        assert!(tx.validate().is_err());
    }

    #[test]
    fn merge_outcome_tx_id() {
        let tx = merge_tx();
        let commit = MergeOutcome::Commit {
            tx: tx.clone(),
            ranges: RangeSet::full(),
            new_epoch: 3,
        };
        assert_eq!(commit.tx_id(), TxId(1));
        assert_eq!(MergeOutcome::Abort { tx_id: TxId(2) }.tx_id(), TxId(2));
    }

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        use bytes::Buf;
        let mut bytes = value.encode_to_bytes();
        let decoded = T::decode(&mut bytes).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(bytes.remaining(), 0, "leftover bytes");
    }

    #[test]
    fn config_codecs_roundtrip() {
        let (spec, _) = two_way_spec();
        let tx = merge_tx();
        roundtrip(ClusterConfig::new(ClusterId(3), nodes(&[1, 2, 3]), RangeSet::full()).unwrap());
        roundtrip(
            ClusterConfig::with_quorum(ClusterId(3), nodes(&[1, 2, 3, 4, 5]), RangeSet::full(), 4)
                .unwrap(),
        );
        roundtrip(spec.clone());
        roundtrip(tx.clone());
        roundtrip(MergeDecision::Ok);
        roundtrip(MergeDecision::No);
        roundtrip(MergeOutcome::Commit {
            tx: tx.clone(),
            ranges: RangeSet::full(),
            new_epoch: 9,
        });
        roundtrip(MergeOutcome::Abort { tx_id: TxId(4) });
        for change in [
            ConfigChange::Simple {
                members: nodes(&[1, 2, 3]),
            },
            ConfigChange::JointEnter {
                old: nodes(&[1, 2]),
                new: nodes(&[1, 2, 3]),
            },
            ConfigChange::JointLeave {
                new: nodes(&[1, 2, 3]),
            },
            ConfigChange::Resize {
                members: nodes(&[1, 2, 3, 4, 5]),
                quorum: 4,
            },
            ConfigChange::SplitJoint(spec.clone()),
            ConfigChange::SplitNew(spec),
            ConfigChange::MergePrepare {
                tx,
                decision: MergeDecision::Ok,
            },
            ConfigChange::MergeCommit(MergeOutcome::Abort { tx_id: TxId(1) }),
            ConfigChange::SetRanges(RangeSet::full()),
        ] {
            roundtrip(change);
        }
    }

    #[test]
    fn config_decode_revalidates() {
        // An empty member set round-trips the bytes but fails validation.
        let mut buf = BytesMut::new();
        ClusterId(1).encode(&mut buf);
        BTreeSet::<NodeId>::new().encode(&mut buf);
        Option::<u64>::None.encode(&mut buf);
        RangeSet::full().encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(ClusterConfig::decode(&mut bytes).is_err());
        // Garbage never panics.
        let mut junk = Bytes::from_static(&[0xFF, 1, 2, 3]);
        assert!(ConfigChange::decode(&mut junk).is_err());
    }

    #[test]
    fn config_change_kinds() {
        let (spec, _) = two_way_spec();
        assert_eq!(ConfigChange::SplitJoint(spec.clone()).kind(), "split-joint");
        assert_eq!(ConfigChange::SplitNew(spec).kind(), "split-new");
        assert_eq!(
            ConfigChange::Simple {
                members: nodes(&[1])
            }
            .kind(),
            "simple"
        );
    }
}
