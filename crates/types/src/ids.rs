//! Strongly-typed identifiers.
//!
//! Newtypes ([`NodeId`], [`ClusterId`], [`LogIndex`], [`TxId`]) keep the many
//! `u64`s flowing through the protocol from being confused with one another
//! (C-NEWTYPE).

use std::fmt;

/// Identifier of a single ReCraft node (a replica process).
///
/// # Example
/// ```
/// use recraft_types::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Identifier of a (sub)cluster — one logical Raft instance.
///
/// Splits mint fresh `ClusterId`s for every subcluster; merges mint a fresh
/// id for the combined cluster. Messages are tagged with the sender's cluster
/// id so independent subclusters never confuse each other's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub u64);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u64> for ClusterId {
    fn from(v: u64) -> Self {
        ClusterId(v)
    }
}

/// Index of an entry in the replicated log. Index 0 is reserved for the
/// "before the log" sentinel; real entries start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogIndex(pub u64);

impl LogIndex {
    /// The sentinel index that precedes every real entry.
    pub const ZERO: LogIndex = LogIndex(0);

    /// Returns the next index.
    #[must_use]
    pub fn next(self) -> LogIndex {
        LogIndex(self.0 + 1)
    }

    /// Returns the previous index.
    ///
    /// # Panics
    /// Panics if called on [`LogIndex::ZERO`].
    #[must_use]
    pub fn prev(self) -> LogIndex {
        assert!(self.0 > 0, "LogIndex::prev on index 0");
        LogIndex(self.0 - 1)
    }

    /// Saturating predecessor (0 stays 0).
    #[must_use]
    pub fn saturating_prev(self) -> LogIndex {
        LogIndex(self.0.saturating_sub(1))
    }
}

impl fmt::Display for LogIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for LogIndex {
    fn from(v: u64) -> Self {
        LogIndex(v)
    }
}

/// Identifier of a merge transaction (2PC). Unique per merge attempt so the
/// protocol stays idempotent across coordinator failovers (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(v: u64) -> Self {
        TxId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(1).to_string(), "n1");
        assert_eq!(ClusterId(2).to_string(), "c2");
        assert_eq!(LogIndex(3).to_string(), "3");
        assert_eq!(TxId(4).to_string(), "tx4");
    }

    #[test]
    fn log_index_navigation() {
        let i = LogIndex(5);
        assert_eq!(i.next(), LogIndex(6));
        assert_eq!(i.prev(), LogIndex(4));
        assert_eq!(LogIndex::ZERO.saturating_prev(), LogIndex::ZERO);
    }

    #[test]
    #[should_panic(expected = "LogIndex::prev")]
    fn prev_of_zero_panics() {
        let _ = LogIndex::ZERO.prev();
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert!(LogIndex(2) < LogIndex(10));
    }

    #[test]
    fn from_u64_roundtrip() {
        assert_eq!(NodeId::from(9), NodeId(9));
        assert_eq!(ClusterId::from(9), ClusterId(9));
        assert_eq!(LogIndex::from(9), LogIndex(9));
        assert_eq!(TxId::from(9), TxId(9));
    }
}
