//! Error types shared across the workspace.

use crate::ids::{ClusterId, LogIndex, NodeId};
use std::fmt;

/// Convenience alias for results in the ReCraft crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the ReCraft protocol and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A key range was malformed or ranges overlapped when they must not.
    InvalidRange(String),
    /// A cluster configuration failed validation (empty member set, quorum
    /// out of bounds, non-disjoint subclusters, ...).
    InvalidConfig(String),
    /// Reconfiguration precondition P1 failed: a prior reconfiguration in the
    /// leader's log is not yet committed (or a merge transaction is pending).
    PreconditionP1,
    /// Reconfiguration precondition P2' failed: the proposed configuration
    /// would not maintain quorum overlap with the current one.
    PreconditionP2(String),
    /// Reconfiguration precondition P3 failed: the leader has not committed
    /// an entry in its current term yet.
    PreconditionP3,
    /// The operation must be performed on the leader; a hint to the believed
    /// leader is included when known.
    NotLeader(Option<NodeId>),
    /// The node does not serve the requested key (range moved to another
    /// cluster); the owning cluster is hinted when known.
    WrongRange(Option<ClusterId>),
    /// The node is blocked in the merge data-exchange phase and cannot serve
    /// requests until resumption (§III-C2: "the data exchange phase blocks").
    MergeBlocked,
    /// A log index was out of the available window (compacted or past the
    /// end).
    IndexOutOfRange(LogIndex),
    /// Codec failure while decoding persisted or transferred bytes.
    Codec(String),
    /// A durable-storage backend failed (I/O error, missing or unrecoverable
    /// persisted state).
    Storage(String),
    /// A proposal was dropped because the node stepped down or the entry was
    /// truncated by a new leader.
    ProposalDropped,
    /// The request's sequence number is older than the session's last applied
    /// one: the session has moved on and the recorded response is gone.
    SessionStale,
    /// The requested operation conflicts with protocol state (e.g. leaving a
    /// joint mode that was never entered).
    InvalidState(String),
    /// A retried operation exhausted its wall-clock deadline; the message
    /// carries the last underlying rejection so a wedged campaign fails
    /// loudly instead of retrying forever.
    DeadlineExceeded(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidRange(m) => write!(f, "invalid key range: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::PreconditionP1 => {
                write!(
                    f,
                    "precondition P1 failed: prior reconfiguration not committed"
                )
            }
            Error::PreconditionP2(m) => {
                write!(f, "precondition P2' failed: quorum overlap violated ({m})")
            }
            Error::PreconditionP3 => {
                write!(
                    f,
                    "precondition P3 failed: no entry committed in leader's term"
                )
            }
            Error::NotLeader(hint) => match hint {
                Some(n) => write!(f, "not the leader; try {n}"),
                None => write!(f, "not the leader; leader unknown"),
            },
            Error::WrongRange(hint) => match hint {
                Some(c) => write!(f, "key not in this cluster's range; try {c}"),
                None => write!(f, "key not in this cluster's range"),
            },
            Error::MergeBlocked => write!(f, "cluster is blocked in merge data exchange"),
            Error::IndexOutOfRange(i) => write!(f, "log index {i} out of range"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::ProposalDropped => write!(f, "proposal dropped"),
            Error::SessionStale => write!(f, "request older than the session's last applied one"),
            Error::InvalidState(m) => write!(f, "invalid protocol state: {m}"),
            Error::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let cases: Vec<Error> = vec![
            Error::InvalidRange("x".into()),
            Error::InvalidConfig("x".into()),
            Error::PreconditionP1,
            Error::PreconditionP2("x".into()),
            Error::PreconditionP3,
            Error::NotLeader(Some(NodeId(1))),
            Error::NotLeader(None),
            Error::WrongRange(Some(ClusterId(1))),
            Error::WrongRange(None),
            Error::MergeBlocked,
            Error::IndexOutOfRange(LogIndex(3)),
            Error::Codec("x".into()),
            Error::Storage("x".into()),
            Error::ProposalDropped,
            Error::SessionStale,
            Error::InvalidState("x".into()),
            Error::DeadlineExceeded("x".into()),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
