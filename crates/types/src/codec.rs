//! A small hand-rolled binary codec.
//!
//! Used for snapshot payloads and persisted state. All integers are
//! big-endian fixed width; byte strings and collections are length-prefixed
//! with a `u32`. No external serialization format is required (DESIGN.md §7).
//!
//! # Example
//! ```
//! use bytes::BytesMut;
//! use recraft_types::codec::{Decode, Encode};
//!
//! let mut buf = BytesMut::new();
//! 42u64.encode(&mut buf);
//! "hello".to_string().encode(&mut buf);
//! let mut bytes = buf.freeze();
//! assert_eq!(u64::decode(&mut bytes).unwrap(), 42);
//! assert_eq!(String::decode(&mut bytes).unwrap(), "hello");
//! ```

use crate::error::{Error, Result};
use crate::eterm::EpochTerm;
use crate::ids::{ClusterId, LogIndex, NodeId, TxId};
use crate::range::{KeyRange, RangeSet};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, BTreeSet};

/// Types that can be appended to a byte buffer.
pub trait Encode {
    /// Appends the binary form of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Types that can be decoded from a byte buffer.
pub trait Decode: Sized {
    /// Decodes a value, consuming bytes from the front of `buf`.
    ///
    /// # Errors
    /// Returns [`Error::Codec`] on truncated or malformed input.
    fn decode(buf: &mut Bytes) -> Result<Self>;
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Codec(format!(
            "truncated input decoding {what}: need {n}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

impl Encode for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        need(buf, 4, "u32")?;
        Ok(buf.get_u32())
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(Error::Codec(format!("invalid bool byte {v}"))),
        }
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(u32::try_from(self.len()).expect("byte string too long"));
        buf.put_slice(self);
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "byte string body")?;
        Ok(buf.copy_to_bytes(len))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_bytes().to_vec().encode(buf);
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let raw = Vec::<u8>::decode(buf)?;
        String::from_utf8(raw).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            v => Err(Error::Codec(format!("invalid option tag {v}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(u32::try_from(self.len()).expect("collection too long"));
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(u32::try_from(self.len()).expect("collection too long"));
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(u32::try_from(self.len()).expect("map too long"));
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! id_codec {
    ($ty:ty) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.put_u64(self.0);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> Result<Self> {
                Ok(Self(u64::decode(buf)?))
            }
        }
    };
}

id_codec!(NodeId);
id_codec!(ClusterId);
id_codec!(LogIndex);
id_codec!(TxId);

impl Encode for EpochTerm {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.packed());
    }
}

impl Decode for EpochTerm {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(EpochTerm::from_packed(u64::decode(buf)?))
    }
}

impl Encode for KeyRange {
    fn encode(&self, buf: &mut BytesMut) {
        self.start().to_vec().encode(buf);
        self.end().map(<[u8]>::to_vec).encode(buf);
    }
}

impl Decode for KeyRange {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let start = Vec::<u8>::decode(buf)?;
        let end = Option::<Vec<u8>>::decode(buf)?;
        match end {
            Some(end) => KeyRange::new(start, end),
            None => Ok(KeyRange::from_start(start)),
        }
    }
}

impl Encode for RangeSet {
    fn encode(&self, buf: &mut BytesMut) {
        self.ranges().to_vec().encode(buf);
    }
}

impl Decode for RangeSet {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        let ranges = Vec::<KeyRange>::decode(buf)?;
        RangeSet::from_ranges(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = value.encode_to_bytes();
        let decoded = T::decode(&mut bytes).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(bytes.remaining(), 0, "leftover bytes");
    }

    #[test]
    fn primitives() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(b"hello".to_vec());
        roundtrip(String::from("snapshot"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(7u64));
    }

    #[test]
    fn collections() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(BTreeSet::from([NodeId(1), NodeId(2)]));
        roundtrip(BTreeMap::from([
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
        ]));
    }

    #[test]
    fn domain_types() {
        roundtrip(NodeId(9));
        roundtrip(ClusterId(3));
        roundtrip(LogIndex(77));
        roundtrip(TxId(5));
        roundtrip(EpochTerm::new(4, 19));
        roundtrip(KeyRange::full());
        roundtrip(KeyRange::new("a", "m").unwrap());
        roundtrip(RangeSet::full());
        roundtrip(
            RangeSet::from_ranges([
                KeyRange::new("a", "c").unwrap(),
                KeyRange::new("x", "z").unwrap(),
            ])
            .unwrap(),
        );
    }

    #[test]
    fn truncated_inputs_error() {
        let mut short = Bytes::from_static(&[0, 0]);
        assert!(u64::decode(&mut short).is_err());

        let mut bad_len = BytesMut::new();
        bad_len.put_u32(100); // claims 100 bytes, provides none
        let mut bytes = bad_len.freeze();
        assert!(Vec::<u8>::decode(&mut bytes).is_err());
    }

    #[test]
    fn invalid_tags_error() {
        let mut bad_bool = Bytes::from_static(&[7]);
        assert!(bool::decode(&mut bad_bool).is_err());
        let mut bad_opt = Bytes::from_static(&[9]);
        assert!(Option::<u8>::decode(&mut bad_opt).is_err());
    }

    proptest! {
        #[test]
        fn bytes_roundtrip(data: Vec<u8>) {
            roundtrip(data);
        }

        #[test]
        fn map_roundtrip(map: BTreeMap<Vec<u8>, Vec<u8>>) {
            roundtrip(map);
        }

        #[test]
        fn decode_never_panics(data: Vec<u8>) {
            let mut bytes = Bytes::from(data);
            let _ = RangeSet::decode(&mut bytes);
            let _ = String::decode(&mut bytes);
        }
    }
}
