//! Key-range algebra for sharding.
//!
//! Split carves a cluster's range into disjoint pieces; merge recombines the
//! (possibly non-adjacent) pieces of several clusters. [`KeyRange`] is a
//! half-open byte-string interval `[start, end)`; [`RangeSet`] is a
//! normalized union of disjoint ranges.

use crate::error::{Error, Result};
use std::fmt;

/// A half-open key interval `[start, end)` over byte-string keys.
///
/// An empty `end` means "unbounded above" (`+∞`), so the full key space is
/// `KeyRange::full() == ["", +∞)`.
///
/// # Example
/// ```
/// use recraft_types::KeyRange;
/// let full = KeyRange::full();
/// let (lo, hi) = full.split_at(b"m").unwrap();
/// assert!(lo.contains(b"apple"));
/// assert!(hi.contains(b"zebra"));
/// assert!(!lo.contains(b"zebra"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyRange {
    start: Vec<u8>,
    end: Option<Vec<u8>>,
}

impl KeyRange {
    /// The full key space `["", +∞)`.
    #[must_use]
    pub fn full() -> Self {
        KeyRange {
            start: Vec::new(),
            end: None,
        }
    }

    /// A bounded range `[start, end)`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRange`] if `start >= end`.
    pub fn new(start: impl Into<Vec<u8>>, end: impl Into<Vec<u8>>) -> Result<Self> {
        let (start, end) = (start.into(), end.into());
        if start >= end {
            return Err(Error::InvalidRange(format!(
                "start {start:?} must be < end {end:?}"
            )));
        }
        Ok(KeyRange {
            start,
            end: Some(end),
        })
    }

    /// A range unbounded above: `[start, +∞)`.
    #[must_use]
    pub fn from_start(start: impl Into<Vec<u8>>) -> Self {
        KeyRange {
            start: start.into(),
            end: None,
        }
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn start(&self) -> &[u8] {
        &self.start
    }

    /// Upper bound (exclusive); `None` means unbounded.
    #[must_use]
    pub fn end(&self) -> Option<&[u8]> {
        self.end.as_deref()
    }

    /// Whether `key` falls inside the range.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_slice()
            && match &self.end {
                Some(end) => key < end.as_slice(),
                None => true,
            }
    }

    /// Whether two ranges share any key.
    #[must_use]
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        let self_below = match &self.end {
            Some(end) => end.as_slice() <= other.start.as_slice(),
            None => false,
        };
        let other_below = match &other.end {
            Some(end) => end.as_slice() <= self.start.as_slice(),
            None => false,
        };
        !(self_below || other_below)
    }

    /// Whether `other` begins exactly where `self` ends (so their union is a
    /// single contiguous range).
    #[must_use]
    pub fn adjacent_below(&self, other: &KeyRange) -> bool {
        match &self.end {
            Some(end) => end.as_slice() == other.start.as_slice(),
            None => false,
        }
    }

    /// Splits the range at `key`, yielding `[start, key)` and `[key, end)`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRange`] if `key` is not strictly inside the
    /// range (a boundary split would produce an empty piece).
    pub fn split_at(&self, key: &[u8]) -> Result<(KeyRange, KeyRange)> {
        if key <= self.start.as_slice() || !self.contains(key) {
            return Err(Error::InvalidRange(format!(
                "split key {key:?} not strictly inside range {self}"
            )));
        }
        let low = KeyRange {
            start: self.start.clone(),
            end: Some(key.to_vec()),
        };
        let high = KeyRange {
            start: key.to_vec(),
            end: self.end.clone(),
        };
        Ok((low, high))
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |b: &[u8]| -> String {
            match std::str::from_utf8(b) {
                Ok(s) => s.to_string(),
                Err(_) => format!("{b:02x?}"),
            }
        };
        match &self.end {
            Some(end) => write!(f, "[{}, {})", show(&self.start), show(end)),
            None => write!(f, "[{}, +inf)", show(&self.start)),
        }
    }
}

/// A normalized set of pairwise-disjoint key ranges, kept sorted by start
/// key with adjacent pieces coalesced.
///
/// Merged clusters own a `RangeSet` because the constituent clusters' ranges
/// need not be adjacent (§III-C: "the current implementation only deals with
/// disjoint data chunks").
///
/// # Example
/// ```
/// use recraft_types::{KeyRange, RangeSet};
/// let a = RangeSet::from(KeyRange::new("a", "g").unwrap());
/// let b = RangeSet::from(KeyRange::new("m", "z").unwrap());
/// let merged = a.union(&b).unwrap();
/// assert!(merged.contains(b"c"));
/// assert!(!merged.contains(b"k"));
/// assert!(merged.contains(b"q"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RangeSet {
    ranges: Vec<KeyRange>,
}

impl RangeSet {
    /// The empty range set.
    #[must_use]
    pub fn empty() -> Self {
        RangeSet { ranges: Vec::new() }
    }

    /// The full key space as a single range.
    #[must_use]
    pub fn full() -> Self {
        RangeSet {
            ranges: vec![KeyRange::full()],
        }
    }

    /// Builds a normalized set from arbitrary ranges.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRange`] if any two inputs overlap.
    pub fn from_ranges(ranges: impl IntoIterator<Item = KeyRange>) -> Result<Self> {
        let mut rs = RangeSet::empty();
        for r in ranges {
            rs.insert(r)?;
        }
        Ok(rs)
    }

    /// The constituent disjoint ranges in ascending order.
    #[must_use]
    pub fn ranges(&self) -> &[KeyRange] {
        &self.ranges
    }

    /// Whether the set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether `key` falls inside any constituent range.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        // Binary search on start keys, then bound-check the candidate.
        let idx = self.ranges.partition_point(|r| r.start() <= key);
        idx > 0 && self.ranges[idx - 1].contains(key)
    }

    /// Inserts one more range, coalescing with adjacent neighbours.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRange`] if the new range overlaps an existing
    /// one.
    pub fn insert(&mut self, range: KeyRange) -> Result<()> {
        for existing in &self.ranges {
            if existing.overlaps(&range) {
                return Err(Error::InvalidRange(format!(
                    "range {range} overlaps existing {existing}"
                )));
            }
        }
        self.ranges.push(range);
        self.normalize();
        Ok(())
    }

    /// Whether two sets share any key.
    #[must_use]
    pub fn overlaps(&self, other: &RangeSet) -> bool {
        self.ranges
            .iter()
            .any(|a| other.ranges.iter().any(|b| a.overlaps(b)))
    }

    /// The union of two disjoint sets.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRange`] if the sets overlap.
    pub fn union(&self, other: &RangeSet) -> Result<RangeSet> {
        let mut out = self.clone();
        for r in &other.ranges {
            out.insert(r.clone())?;
        }
        Ok(out)
    }

    fn normalize(&mut self) {
        self.ranges.sort_by(|a, b| a.start().cmp(b.start()));
        let mut out: Vec<KeyRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            match out.last_mut() {
                Some(last) if last.adjacent_below(&r) => {
                    // Coalesce [a,b) + [b,c) into [a,c).
                    last.end = r.end;
                }
                _ => out.push(r),
            }
        }
        self.ranges = out;
    }
}

impl From<KeyRange> for RangeSet {
    fn from(r: KeyRange) -> Self {
        RangeSet { ranges: vec![r] }
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_contains_everything() {
        let full = KeyRange::full();
        assert!(full.contains(b""));
        assert!(full.contains(b"\xff\xff"));
    }

    #[test]
    fn bounded_range_membership() {
        let r = KeyRange::new("b", "m").unwrap();
        assert!(!r.contains(b"a"));
        assert!(r.contains(b"b"));
        assert!(r.contains(b"lzzz"));
        assert!(!r.contains(b"m"));
    }

    #[test]
    fn invalid_range_rejected() {
        assert!(KeyRange::new("m", "b").is_err());
        assert!(KeyRange::new("m", "m").is_err());
    }

    #[test]
    fn split_at_partitions() {
        let full = KeyRange::full();
        let (lo, hi) = full.split_at(b"m").unwrap();
        assert_eq!(lo, KeyRange::new("", "m").unwrap_or(lo.clone()));
        for key in [&b"a"[..], b"m", b"z", b""] {
            assert_eq!(lo.contains(key) ^ hi.contains(key), full.contains(key));
        }
    }

    #[test]
    fn split_at_boundary_fails() {
        let r = KeyRange::new("b", "m").unwrap();
        assert!(r.split_at(b"b").is_err());
        assert!(r.split_at(b"m").is_err());
        assert!(r.split_at(b"a").is_err());
    }

    #[test]
    fn overlap_detection() {
        let a = KeyRange::new("a", "m").unwrap();
        let b = KeyRange::new("m", "z").unwrap();
        let c = KeyRange::new("l", "n").unwrap();
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(KeyRange::full().overlaps(&a));
    }

    #[test]
    fn adjacency() {
        let a = KeyRange::new("a", "m").unwrap();
        let b = KeyRange::new("m", "z").unwrap();
        assert!(a.adjacent_below(&b));
        assert!(!b.adjacent_below(&a));
    }

    #[test]
    fn rangeset_coalesces_adjacent() {
        let a = KeyRange::new("a", "m").unwrap();
        let b = KeyRange::new("m", "z").unwrap();
        let rs = RangeSet::from_ranges([b, a]).unwrap();
        assert_eq!(rs.ranges().len(), 1);
        assert_eq!(rs.ranges()[0], KeyRange::new("a", "z").unwrap());
    }

    #[test]
    fn rangeset_rejects_overlap() {
        let mut rs = RangeSet::from(KeyRange::new("a", "m").unwrap());
        assert!(rs.insert(KeyRange::new("l", "z").unwrap()).is_err());
    }

    #[test]
    fn rangeset_union_disjoint() {
        let a = RangeSet::from(KeyRange::new("a", "c").unwrap());
        let b = RangeSet::from(KeyRange::new("x", "z").unwrap());
        let u = a.union(&b).unwrap();
        assert_eq!(u.ranges().len(), 2);
        assert!(u.contains(b"b"));
        assert!(u.contains(b"y"));
        assert!(!u.contains(b"k"));
    }

    #[test]
    fn rangeset_union_overlap_fails() {
        let a = RangeSet::from(KeyRange::new("a", "m").unwrap());
        let b = RangeSet::from(KeyRange::new("c", "z").unwrap());
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn split_then_union_is_identity() {
        let full = KeyRange::full();
        let (lo, hi) = full.split_at(b"m").unwrap();
        let u = RangeSet::from(lo).union(&RangeSet::from(hi)).unwrap();
        assert_eq!(u, RangeSet::full());
    }

    #[test]
    fn contains_uses_binary_search_boundaries() {
        let rs = RangeSet::from_ranges([
            KeyRange::new("a", "c").unwrap(),
            KeyRange::new("e", "g").unwrap(),
            KeyRange::new("i", "k").unwrap(),
        ])
        .unwrap();
        assert!(rs.contains(b"a"));
        assert!(!rs.contains(b"c"));
        assert!(rs.contains(b"f"));
        assert!(!rs.contains(b"h"));
        assert!(rs.contains(b"j"));
        assert!(!rs.contains(b"z"));
    }
}
