//! Core data types shared by every ReCraft crate.
//!
//! This crate defines the vocabulary of the ReCraft protocol reproduction:
//!
//! * [`NodeId`], [`ClusterId`], [`LogIndex`] — strongly-typed identifiers.
//! * [`EpochTerm`] — the epoch-prefixed term number of §III-A of the paper:
//!   the top 32 bits of a `u64` hold the reconfiguration *epoch*, the bottom
//!   32 bits the regular Raft *term*, so an updated epoch dominates any term
//!   from an older configuration.
//! * [`KeyRange`] / [`RangeSet`] — the sharding algebra used by split and
//!   merge to carve and recombine key spaces.
//! * [`ClusterConfig`], [`QuorumRule`], [`ConfigChange`] — configurations and
//!   the special log entries that reconfigure them.
//! * [`codec`] — a small hand-rolled binary codec used for snapshots and
//!   persistence (no external serialization format is required).
//! * [`client`] — the typed client protocol: sessions with exactly-once
//!   write semantics ([`ClientRequest`]/[`ClientResponse`]/[`SessionTable`])
//!   and structured redirect outcomes.
//!
//! # Example
//!
//! ```
//! use recraft_types::{EpochTerm, NodeId};
//!
//! let old = EpochTerm::new(1, 900);
//! let new = EpochTerm::new(2, 3);
//! // A bumped epoch dominates any term of the previous epoch.
//! assert!(new > old);
//! assert_eq!(new.epoch(), 2);
//! assert_eq!(NodeId(7).to_string(), "n7");
//! ```

pub mod client;
pub mod codec;
pub mod config;
pub mod error;
pub mod eterm;
pub mod ids;
pub mod range;

pub use client::{
    ClientOp, ClientOutcome, ClientRequest, ClientResponse, SessionCheck, SessionId, SessionTable,
};
pub use config::{
    ClusterConfig, ConfigChange, MergeDecision, MergeOutcome, MergeParticipant, MergeTx,
    QuorumRule, SplitSpec,
};
pub use error::{Error, Result};
pub use eterm::EpochTerm;
pub use ids::{ClusterId, LogIndex, NodeId, TxId};
pub use range::{KeyRange, RangeSet};
