//! The typed client protocol: sessions, exactly-once writes, and
//! linearizable reads.
//!
//! Production SMR systems treat the client interface as a first-class
//! protocol rather than raw bytes on a socket. This module defines it:
//!
//! * A client opens a **session** ([`SessionId`]) and tags every request
//!   with a monotonically increasing sequence number (`seq`). The replicated
//!   state machine keeps a per-session [`SessionTable`] *inside the applied
//!   state*, so a retried write is applied **exactly once** even across
//!   leader changes, restarts, splits, and merges — the table travels with
//!   snapshots and merge exchange parts.
//! * Writes are [`ClientOp::Command`]s routed by key through the replicated
//!   log. Reads are [`ClientOp::Get`]s served through the leader's
//!   **ReadIndex** path: the leader confirms its commit index with a quorum
//!   heartbeat round and answers from the applied state without appending.
//! * Every response carries a structured [`ClientOutcome`]. Routing misses
//!   return [`ClientOutcome::Redirect`] with a leader hint and the
//!   responder's cluster so retries land correctly even while the topology
//!   is being split or merged underneath the client.
//!
//! All types have compact binary codecs ([`Encode`]/[`Decode`]) so they can
//! travel through transports and snapshots.
//!
//! # Example
//! ```
//! use bytes::Bytes;
//! use recraft_types::client::{ClientOp, ClientRequest, SessionId, SessionCheck, SessionTable};
//!
//! let req = ClientRequest {
//!     session: SessionId(7),
//!     seq: 1,
//!     op: ClientOp::Command { key: b"k".to_vec(), cmd: Bytes::from_static(b"v") },
//! };
//! assert_eq!(req.key(), b"k");
//!
//! let mut table = SessionTable::new();
//! assert_eq!(table.check(SessionId(7), 1), SessionCheck::Fresh);
//! table.record(SessionId(7), 1, Bytes::from_static(b"ok"));
//! // A duplicate delivery of the same (session, seq) is answered from the
//! // table instead of re-applying.
//! assert!(matches!(table.check(SessionId(7), 1), SessionCheck::Duplicate(_)));
//! ```

use crate::codec::{Decode, Encode};
use crate::error::{Error, Result};
use crate::ids::{ClusterId, NodeId};
use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a client session. Sessions are the unit of exactly-once
/// accounting: each session's sequence numbers must increase monotonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl Encode for SessionId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}

impl Decode for SessionId {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(SessionId(u64::decode(buf)?))
    }
}

/// What a client asks a cluster to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Apply an opaque state-machine command (a write): goes through the
    /// replicated log and is deduplicated by `(session, seq)`.
    Command {
        /// The key the command touches (routing and range checks).
        key: Vec<u8>,
        /// The encoded state-machine command.
        cmd: Bytes,
    },
    /// Read a key linearizably through the leader's ReadIndex path: no log
    /// entry is appended; the leader quorum-confirms its commit index and
    /// answers from the applied state machine.
    Get {
        /// The key to read.
        key: Vec<u8>,
    },
}

impl ClientOp {
    /// The key this operation is routed by.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        match self {
            ClientOp::Command { key, .. } | ClientOp::Get { key } => key,
        }
    }

    /// Whether this is a read served without a log append.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, ClientOp::Get { .. })
    }

    /// Approximate wire size of the payload in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            ClientOp::Command { key, cmd } => key.len() + cmd.len(),
            ClientOp::Get { key } => key.len(),
        }
    }
}

impl Encode for ClientOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientOp::Command { key, cmd } => {
                0u8.encode(buf);
                key.encode(buf);
                cmd.encode(buf);
            }
            ClientOp::Get { key } => {
                1u8.encode(buf);
                key.encode(buf);
            }
        }
    }
}

impl Decode for ClientOp {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(ClientOp::Command {
                key: Vec::<u8>::decode(buf)?,
                cmd: Bytes::decode(buf)?,
            }),
            1 => Ok(ClientOp::Get {
                key: Vec::<u8>::decode(buf)?,
            }),
            t => Err(Error::Codec(format!("unknown ClientOp tag {t}"))),
        }
    }
}

/// One client request: which session, which attempt, what to do.
///
/// Retrying the same `(session, seq)` is always safe: the dedup table
/// guarantees the command applies at most once, and the retry receives the
/// recorded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRequest {
    /// The issuing session.
    pub session: SessionId,
    /// Monotonically increasing per-session sequence number.
    pub seq: u64,
    /// The operation.
    pub op: ClientOp,
}

impl ClientRequest {
    /// The key this request is routed by.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        self.op.key()
    }
}

impl Encode for ClientRequest {
    fn encode(&self, buf: &mut BytesMut) {
        self.session.encode(buf);
        self.seq.encode(buf);
        self.op.encode(buf);
    }
}

impl Decode for ClientRequest {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(ClientRequest {
            session: SessionId::decode(buf)?,
            seq: u64::decode(buf)?,
            op: ClientOp::decode(buf)?,
        })
    }
}

/// How a node answered a [`ClientRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The operation completed; `payload` is the state machine's response
    /// (for duplicates, the response recorded at first application).
    Reply {
        /// Encoded state-machine response.
        payload: Bytes,
    },
    /// The contacted node cannot serve the request; retry against
    /// `leader_hint` (if known). `cluster` is the responder's cluster so the
    /// client can fix its routing table across splits and merges.
    Redirect {
        /// The believed leader, when known.
        leader_hint: Option<NodeId>,
        /// The responder's current cluster, when it has one.
        cluster: Option<ClusterId>,
    },
    /// The request was rejected; the error says whether a retry (possibly
    /// after re-resolving the owning cluster) can succeed.
    Rejected {
        /// Why the request was not served.
        error: Error,
    },
}

impl ClientOutcome {
    /// A short tag for traces and metrics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ClientOutcome::Reply { .. } => "reply",
            ClientOutcome::Redirect { .. } => "redirect",
            ClientOutcome::Rejected { .. } => "rejected",
        }
    }

    /// Approximate wire size of the payload in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            ClientOutcome::Reply { payload } => payload.len(),
            ClientOutcome::Redirect { .. } | ClientOutcome::Rejected { .. } => 0,
        }
    }
}

impl Encode for ClientOutcome {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientOutcome::Reply { payload } => {
                0u8.encode(buf);
                payload.encode(buf);
            }
            ClientOutcome::Redirect {
                leader_hint,
                cluster,
            } => {
                1u8.encode(buf);
                leader_hint.encode(buf);
                cluster.encode(buf);
            }
            ClientOutcome::Rejected { error } => {
                2u8.encode(buf);
                error.encode(buf);
            }
        }
    }
}

impl Decode for ClientOutcome {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(ClientOutcome::Reply {
                payload: Bytes::decode(buf)?,
            }),
            1 => Ok(ClientOutcome::Redirect {
                leader_hint: Option::<NodeId>::decode(buf)?,
                cluster: Option::<ClusterId>::decode(buf)?,
            }),
            2 => Ok(ClientOutcome::Rejected {
                error: Error::decode(buf)?,
            }),
            t => Err(Error::Codec(format!("unknown ClientOutcome tag {t}"))),
        }
    }
}

/// One client response, echoing the request's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The session the request belonged to.
    pub session: SessionId,
    /// The request's sequence number.
    pub seq: u64,
    /// What happened.
    pub outcome: ClientOutcome,
}

impl Encode for ClientResponse {
    fn encode(&self, buf: &mut BytesMut) {
        self.session.encode(buf);
        self.seq.encode(buf);
        self.outcome.encode(buf);
    }
}

impl Decode for ClientResponse {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(ClientResponse {
            session: SessionId::decode(buf)?,
            seq: u64::decode(buf)?,
            outcome: ClientOutcome::decode(buf)?,
        })
    }
}

/// What the dedup table says about an incoming `(session, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionCheck {
    /// Never seen: apply it.
    Fresh,
    /// Exactly the last applied request of this session: answer with the
    /// recorded response, do not re-apply.
    Duplicate(Bytes),
    /// Older than the last applied request: the session has moved on and the
    /// recorded response is gone.
    Stale,
}

/// The per-session bookkeeping of one session: the highest applied sequence
/// number and the response recorded for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// The highest `seq` applied for this session.
    pub last_seq: u64,
    /// The state-machine response recorded at that application.
    pub last_reply: Bytes,
}

impl Encode for SessionEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.last_seq.encode(buf);
        self.last_reply.encode(buf);
    }
}

impl Decode for SessionEntry {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(SessionEntry {
            last_seq: u64::decode(buf)?,
            last_reply: Bytes::decode(buf)?,
        })
    }
}

/// The exactly-once dedup table, part of the *applied state*: it is rebuilt
/// from snapshots on restart, retained whole through split completion (both
/// subclusters inherit it, so a retry routed to either owner deduplicates),
/// and merged (highest `seq` wins) when clusters merge.
///
/// Entries live for the life of the session; there is no expiry yet, so the
/// table grows with the number of distinct sessions (one entry each, holding
/// the last reply). Lease-based session expiry is the natural follow-up once
/// clients heartbeat.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionTable {
    entries: BTreeMap<SessionId, SessionEntry>,
}

impl SessionTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// The number of tracked sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no session has applied anything yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Classifies an incoming `(session, seq)` against the applied history.
    #[must_use]
    pub fn check(&self, session: SessionId, seq: u64) -> SessionCheck {
        match self.entries.get(&session) {
            None => SessionCheck::Fresh,
            Some(e) if seq > e.last_seq => SessionCheck::Fresh,
            Some(e) if seq == e.last_seq => SessionCheck::Duplicate(e.last_reply.clone()),
            Some(_) => SessionCheck::Stale,
        }
    }

    /// Records that `seq` applied for `session` with `reply`.
    ///
    /// # Panics
    /// Debug-asserts monotonicity: apply-side dedup must run first.
    pub fn record(&mut self, session: SessionId, seq: u64, reply: Bytes) {
        let entry = self.entries.entry(session).or_insert(SessionEntry {
            last_seq: 0,
            last_reply: Bytes::new(),
        });
        debug_assert!(seq > entry.last_seq || (entry.last_seq == 0 && entry.last_reply.is_empty()));
        entry.last_seq = seq;
        entry.last_reply = reply;
    }

    /// The last applied sequence number of a session, if any.
    #[must_use]
    pub fn last_seq(&self, session: SessionId) -> Option<u64> {
        self.entries.get(&session).map(|e| e.last_seq)
    }

    /// Absorbs another table: for sessions present in both, the entry with
    /// the higher `last_seq` wins (merge resumption combines the
    /// participants' tables this way).
    pub fn absorb(&mut self, other: &SessionTable) {
        for (session, entry) in &other.entries {
            match self.entries.get(session) {
                Some(mine) if mine.last_seq >= entry.last_seq => {}
                _ => {
                    self.entries.insert(*session, entry.clone());
                }
            }
        }
    }

    /// Approximate size in bytes (what snapshot transfer moves).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.entries.values().map(|e| 16 + e.last_reply.len()).sum()
    }
}

impl Encode for SessionTable {
    fn encode(&self, buf: &mut BytesMut) {
        self.entries.encode(buf);
    }
}

impl Decode for SessionTable {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(SessionTable {
            entries: BTreeMap::decode(buf)?,
        })
    }
}

impl Encode for Error {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Error::InvalidRange(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            Error::InvalidConfig(m) => {
                1u8.encode(buf);
                m.encode(buf);
            }
            Error::PreconditionP1 => 2u8.encode(buf),
            Error::PreconditionP2(m) => {
                3u8.encode(buf);
                m.encode(buf);
            }
            Error::PreconditionP3 => 4u8.encode(buf),
            Error::NotLeader(hint) => {
                5u8.encode(buf);
                hint.encode(buf);
            }
            Error::WrongRange(hint) => {
                6u8.encode(buf);
                hint.encode(buf);
            }
            Error::MergeBlocked => 7u8.encode(buf),
            Error::IndexOutOfRange(i) => {
                8u8.encode(buf);
                i.encode(buf);
            }
            Error::Codec(m) => {
                9u8.encode(buf);
                m.encode(buf);
            }
            Error::ProposalDropped => 10u8.encode(buf),
            Error::InvalidState(m) => {
                11u8.encode(buf);
                m.encode(buf);
            }
            Error::SessionStale => 12u8.encode(buf),
            Error::Storage(m) => {
                13u8.encode(buf);
                m.encode(buf);
            }
            Error::DeadlineExceeded(m) => {
                14u8.encode(buf);
                m.encode(buf);
            }
        }
    }
}

impl Decode for Error {
    fn decode(buf: &mut Bytes) -> Result<Self> {
        Ok(match u8::decode(buf)? {
            0 => Error::InvalidRange(String::decode(buf)?),
            1 => Error::InvalidConfig(String::decode(buf)?),
            2 => Error::PreconditionP1,
            3 => Error::PreconditionP2(String::decode(buf)?),
            4 => Error::PreconditionP3,
            5 => Error::NotLeader(Option::<NodeId>::decode(buf)?),
            6 => Error::WrongRange(Option::<ClusterId>::decode(buf)?),
            7 => Error::MergeBlocked,
            8 => Error::IndexOutOfRange(crate::ids::LogIndex::decode(buf)?),
            9 => Error::Codec(String::decode(buf)?),
            10 => Error::ProposalDropped,
            11 => Error::InvalidState(String::decode(buf)?),
            12 => Error::SessionStale,
            13 => Error::Storage(String::decode(buf)?),
            14 => Error::DeadlineExceeded(String::decode(buf)?),
            t => return Err(Error::Codec(format!("unknown Error tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = value.encode_to_bytes();
        let decoded = T::decode(&mut bytes).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(bytes.remaining(), 0, "leftover bytes");
    }

    #[test]
    fn request_response_roundtrip() {
        roundtrip(ClientRequest {
            session: SessionId(3),
            seq: 7,
            op: ClientOp::Command {
                key: b"k".to_vec(),
                cmd: Bytes::from_static(b"payload"),
            },
        });
        roundtrip(ClientRequest {
            session: SessionId(3),
            seq: 8,
            op: ClientOp::Get { key: b"k".to_vec() },
        });
        roundtrip(ClientResponse {
            session: SessionId(3),
            seq: 7,
            outcome: ClientOutcome::Reply {
                payload: Bytes::from_static(b"ok"),
            },
        });
        roundtrip(ClientResponse {
            session: SessionId(3),
            seq: 7,
            outcome: ClientOutcome::Redirect {
                leader_hint: Some(NodeId(2)),
                cluster: Some(ClusterId(9)),
            },
        });
        roundtrip(ClientResponse {
            session: SessionId(3),
            seq: 7,
            outcome: ClientOutcome::Rejected {
                error: Error::WrongRange(None),
            },
        });
    }

    #[test]
    fn error_codec_covers_variants() {
        for e in [
            Error::InvalidRange("x".into()),
            Error::InvalidConfig("y".into()),
            Error::PreconditionP1,
            Error::PreconditionP2("z".into()),
            Error::PreconditionP3,
            Error::NotLeader(Some(NodeId(4))),
            Error::NotLeader(None),
            Error::WrongRange(Some(ClusterId(5))),
            Error::MergeBlocked,
            Error::IndexOutOfRange(crate::ids::LogIndex(6)),
            Error::Codec("c".into()),
            Error::ProposalDropped,
            Error::InvalidState("s".into()),
            Error::SessionStale,
            Error::Storage("io".into()),
            Error::DeadlineExceeded("admin split after 12 attempts".into()),
        ] {
            roundtrip(e);
        }
    }

    #[test]
    fn table_dedup_semantics() {
        let mut t = SessionTable::new();
        let s = SessionId(1);
        assert_eq!(t.check(s, 5), SessionCheck::Fresh);
        t.record(s, 5, Bytes::from_static(b"r5"));
        assert_eq!(
            t.check(s, 5),
            SessionCheck::Duplicate(Bytes::from_static(b"r5"))
        );
        assert_eq!(t.check(s, 4), SessionCheck::Stale);
        // Gaps are fine: reads consume sequence numbers without recording.
        assert_eq!(t.check(s, 9), SessionCheck::Fresh);
        t.record(s, 9, Bytes::from_static(b"r9"));
        assert_eq!(t.last_seq(s), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_absorb_takes_max() {
        let mut a = SessionTable::new();
        a.record(SessionId(1), 3, Bytes::from_static(b"a3"));
        a.record(SessionId(2), 1, Bytes::from_static(b"a1"));
        let mut b = SessionTable::new();
        b.record(SessionId(1), 5, Bytes::from_static(b"b5"));
        b.record(SessionId(3), 2, Bytes::from_static(b"b2"));
        a.absorb(&b);
        assert_eq!(t_reply(&a, SessionId(1)), b"b5");
        assert_eq!(t_reply(&a, SessionId(2)), b"a1");
        assert_eq!(t_reply(&a, SessionId(3)), b"b2");
        assert_eq!(a.len(), 3);
        roundtrip(a);
    }

    fn t_reply(t: &SessionTable, s: SessionId) -> Bytes {
        match t.check(s, t.last_seq(s).unwrap()) {
            SessionCheck::Duplicate(r) => r,
            other => panic!("expected duplicate, got {other:?}"),
        }
    }

    #[test]
    fn display_and_keys() {
        assert_eq!(SessionId(4).to_string(), "s4");
        let op = ClientOp::Get { key: b"q".to_vec() };
        assert!(op.is_read());
        assert_eq!(op.key(), b"q");
        assert_eq!(
            ClientOutcome::Reply {
                payload: Bytes::from_static(b"xy")
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            ClientOutcome::Redirect {
                leader_hint: None,
                cluster: None
            }
            .kind(),
            "redirect"
        );
    }
}
