//! Epoch-prefixed term numbers (§III-A of the paper).
//!
//! ReCraft orders configurations produced by splits and merges with a
//! monotonically increasing *epoch* placed in the upper bits of the regular
//! Raft term: "the first 4 bytes as the epoch number and the remainder as the
//! regular term number for an 8-byte integer". Comparisons on the packed
//! value therefore let an updated epoch dominate any stale term, which is
//! what prevents commands from old configurations from interfering with the
//! new one, and what lets missed-out nodes detect that their peers have moved
//! on (triggering pull-based recovery).

use std::fmt;

/// An epoch-prefixed Raft term: `epoch` in the high 32 bits, `term` in the
/// low 32 bits of a `u64`.
///
/// Epochs are bumped only when a split *completes* or a merge resumes; they
/// are **not** updated for single-cluster membership changes (§III-A).
///
/// # Example
/// ```
/// use recraft_types::EpochTerm;
/// let a = EpochTerm::new(0, u32::MAX); // huge term, old epoch
/// let b = EpochTerm::new(1, 0);        // new epoch
/// assert!(b > a);
/// assert_eq!(b.packed(), 1u64 << 32);
/// assert_eq!(EpochTerm::from_packed(a.packed()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochTerm {
    epoch: u32,
    term: u32,
}

impl EpochTerm {
    /// The zero epoch-term (epoch 0, term 0) — the state of a freshly booted
    /// node.
    pub const ZERO: EpochTerm = EpochTerm { epoch: 0, term: 0 };

    /// Creates a new epoch-term.
    #[must_use]
    pub fn new(epoch: u32, term: u32) -> Self {
        EpochTerm { epoch, term }
    }

    /// The epoch component (upper 32 bits).
    #[must_use]
    pub fn epoch(self) -> u32 {
        self.epoch
    }

    /// The regular Raft term component (lower 32 bits).
    #[must_use]
    pub fn term(self) -> u32 {
        self.term
    }

    /// Packs the epoch-term into the 8-byte integer representation used on
    /// the wire and in persisted state.
    #[must_use]
    pub fn packed(self) -> u64 {
        (u64::from(self.epoch) << 32) | u64::from(self.term)
    }

    /// Reconstructs an epoch-term from its packed representation.
    #[must_use]
    pub fn from_packed(v: u64) -> Self {
        EpochTerm {
            epoch: (v >> 32) as u32,
            term: (v & 0xFFFF_FFFF) as u32,
        }
    }

    /// The next term within the same epoch (candidate stepping forward).
    ///
    /// # Panics
    /// Panics on term overflow (2^32 terms within one epoch).
    #[must_use]
    pub fn next_term(self) -> Self {
        EpochTerm {
            epoch: self.epoch,
            term: self.term.checked_add(1).expect("term overflow"),
        }
    }

    /// Enters the next epoch, resetting the term to `term`.
    ///
    /// Split completion uses `with_term = current term` (the completing
    /// leader carries its leadership into the subcluster); merge resumption
    /// uses `with_term = 0` (the `Cnew` entry is "treated as committed at
    /// term 0 of epoch Enew", §III-C2).
    ///
    /// # Panics
    /// Panics on epoch overflow.
    #[must_use]
    pub fn next_epoch(self, with_term: u32) -> Self {
        EpochTerm {
            epoch: self.epoch.checked_add(1).expect("epoch overflow"),
            term: with_term,
        }
    }
}

impl fmt::Display for EpochTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}.t{}", self.epoch, self.term)
    }
}

impl From<EpochTerm> for u64 {
    fn from(et: EpochTerm) -> u64 {
        et.packed()
    }
}

impl From<u64> for EpochTerm {
    fn from(v: u64) -> EpochTerm {
        EpochTerm::from_packed(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packing_layout_matches_paper() {
        // "the first 4 bytes as the epoch number and the remainder as the
        // regular term number for an 8-byte integer"
        let et = EpochTerm::new(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(et.packed(), 0xDEAD_BEEF_1234_5678);
    }

    #[test]
    fn epoch_dominates_term() {
        assert!(EpochTerm::new(1, 0) > EpochTerm::new(0, u32::MAX));
        assert!(EpochTerm::new(3, 5) > EpochTerm::new(3, 4));
    }

    #[test]
    fn next_term_and_epoch() {
        let et = EpochTerm::new(2, 7);
        assert_eq!(et.next_term(), EpochTerm::new(2, 8));
        assert_eq!(et.next_epoch(0), EpochTerm::new(3, 0));
        assert_eq!(et.next_epoch(7), EpochTerm::new(3, 7));
    }

    #[test]
    fn display() {
        assert_eq!(EpochTerm::new(1, 2).to_string(), "e1.t2");
    }

    proptest! {
        #[test]
        fn packed_roundtrip(v: u64) {
            prop_assert_eq!(EpochTerm::from_packed(v).packed(), v);
        }

        #[test]
        fn order_isomorphic_to_packed(a: u64, b: u64) {
            let (ea, eb) = (EpochTerm::from_packed(a), EpochTerm::from_packed(b));
            prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
        }
    }
}
