//! Multi-generation reconfigurations: clusters that split, split again, and
//! merge across generations — epochs keep climbing and every node always
//! lands in a consistent configuration (§V's "continuous split, merge, and
//! membership changes").

use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec, TxId,
};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn split_two(
    sim: &mut Sim,
    src: ClusterId,
    at: &[u8],
    left: (ClusterId, Vec<NodeId>),
    right: (ClusterId, Vec<NodeId>),
) {
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    // Split the (single) range the cluster currently serves.
    let range = base
        .ranges()
        .ranges()
        .iter()
        .find(|r| r.contains(at))
        .expect("split key inside served range")
        .clone();
    let (lo, hi) = range.split_at(at).unwrap();
    // Other ranges (if any) stay with the left subcluster.
    let mut left_ranges = RangeSet::from(lo);
    for r in base.ranges().ranges() {
        if r != &range {
            left_ranges.insert(r.clone()).unwrap();
        }
    }
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(left.0, left.1, left_ranges).unwrap(),
            ClusterConfig::new(right.0, right.1, RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    sim.admin(src, AdminCmd::Split(spec));
    let (l, r) = (left.0, right.0);
    sim.run_until_pred(60 * SEC, |s| {
        s.leader_of(l).is_some() && s.leader_of(r).is_some()
    });
}

#[test]
fn second_generation_split_raises_epoch_twice() {
    let mut sim = Sim::new(SimConfig::with_seed(0x6E61));
    let root = ClusterId(1);
    sim.boot_cluster(root, &ids(1..=8), RangeSet::full());
    sim.run_until_leader(root);
    sim.add_clients(4, Workload::default());
    sim.run_for(2 * SEC);

    // Generation 1: 8 nodes -> 4 + 4.
    split_two(
        &mut sim,
        root,
        b"k00005000",
        (ClusterId(10), ids(1..=4)),
        (ClusterId(11), ids(5..=8)),
    );
    sim.run_for(SEC);
    // Generation 2: the left half splits again -> 2 + 2.
    split_two(
        &mut sim,
        ClusterId(10),
        b"k00002500",
        (ClusterId(20), ids(1..=2)),
        (ClusterId(21), ids(3..=4)),
    );
    sim.run_for(SEC);

    // Epochs: generation-2 clusters are at epoch 2; the untouched right half
    // stays at epoch 1.
    for id in ids(1..=4) {
        assert_eq!(
            sim.node(id).unwrap().current_eterm().epoch(),
            2,
            "{id} in a generation-2 cluster"
        );
    }
    for id in ids(5..=8) {
        assert_eq!(sim.node(id).unwrap().current_eterm().epoch(), 1);
    }
    // Three disjoint serving clusters cover the keyspace.
    for key in [b"k00001000".as_slice(), b"k00004000", b"k00008000"] {
        let owners: Vec<ClusterId> = sim
            .nodes()
            .filter(|n| n.is_leader() && n.config().ranges().contains(key))
            .map(|n| n.cluster())
            .collect();
        assert_eq!(owners.len(), 1, "key {key:?} owned once: {owners:?}");
    }

    // Cross-generation merge: a generation-2 cluster (epoch 2) merges with
    // the generation-1 cluster (epoch 1); the result is at max(2,1)+1 = 3.
    let tx = MergeTx {
        id: TxId(99),
        coordinator: ClusterId(21),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(21),
                members: ids(3..=4).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(5..=8).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(30),
        resume_members: None,
    };
    sim.admin(ClusterId(21), AdminCmd::Merge(tx));
    sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(30)).is_some());
    let leader = sim.leader_of(ClusterId(30)).unwrap();
    assert_eq!(sim.node(leader).unwrap().current_eterm().epoch(), 3);
    assert_eq!(sim.members_of(ClusterId(30)).len(), 6);

    sim.run_for(2 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
}

#[test]
fn membership_change_inside_a_subcluster_after_split() {
    // Epoch numbers are NOT updated for membership changes (§III-A): a
    // subcluster created by a split can grow without touching its epoch.
    let mut sim = Sim::new(SimConfig::with_seed(0x6E62));
    let root = ClusterId(1);
    sim.boot_cluster(root, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(root);
    sim.run_for(SEC);
    split_two(
        &mut sim,
        root,
        b"k00005000",
        (ClusterId(10), ids(1..=3)),
        (ClusterId(11), ids(4..=6)),
    );
    sim.run_for(SEC);
    // Grow subcluster 10 by two joiners.
    sim.boot_joiner(NodeId(7));
    sim.boot_joiner(NodeId(8));
    sim.admin(
        ClusterId(10),
        AdminCmd::AddAndResize([NodeId(7), NodeId(8)].into_iter().collect()),
    );
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some_and(|l| {
            let n = s.node(l).unwrap();
            n.config().members().len() == 5 && n.config().quorum_size() == 3
        })
    });
    let leader = sim.leader_of(ClusterId(10)).unwrap();
    assert_eq!(
        sim.node(leader).unwrap().current_eterm().epoch(),
        1,
        "membership changes do not bump the epoch"
    );
    // The joiners adopted the subcluster's identity and epoch.
    sim.run_until_pred(30 * SEC, |s| {
        [7u64, 8].iter().all(|id| {
            let n = s.node(NodeId(*id)).unwrap();
            n.cluster() == ClusterId(10) && n.current_eterm().epoch() == 1
        })
    });
    sim.check_invariants();
}

#[test]
fn random_reconfiguration_storm() {
    // A seeded storm of alternating splits and merges under client load;
    // safety and linearizability must hold throughout, and the system must
    // end with every key served by exactly one cluster.
    for seed in [11u64, 12] {
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        let root = ClusterId(1);
        sim.boot_cluster(root, &ids(1..=6), RangeSet::full());
        sim.run_until_leader(root);
        sim.add_clients(4, Workload::default());
        sim.run_for(2 * SEC);
        // Split, merge back, split again at a different key, merge back.
        split_two(
            &mut sim,
            root,
            b"k00003000",
            (ClusterId(10), ids(1..=3)),
            (ClusterId(11), ids(4..=6)),
        );
        sim.run_for(SEC);
        let tx = MergeTx {
            id: TxId(seed),
            coordinator: ClusterId(10),
            participants: vec![
                MergeParticipant {
                    cluster: ClusterId(10),
                    members: ids(1..=3).into_iter().collect(),
                },
                MergeParticipant {
                    cluster: ClusterId(11),
                    members: ids(4..=6).into_iter().collect(),
                },
            ],
            new_cluster: ClusterId(12),
            resume_members: None,
        };
        sim.admin(ClusterId(10), AdminCmd::Merge(tx));
        sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(12)).is_some());
        sim.run_for(SEC);
        split_two(
            &mut sim,
            ClusterId(12),
            b"k00007000",
            (ClusterId(13), ids(1..=3)),
            (ClusterId(14), ids(4..=6)),
        );
        sim.run_for(2 * SEC);
        // Coverage: every probe key served by exactly one leader.
        for key in [b"k00000001".as_slice(), b"k00005000", b"k00009999"] {
            let owners = sim
                .nodes()
                .filter(|n| n.is_leader() && n.config().ranges().contains(key))
                .count();
            assert_eq!(owners, 1, "seed {seed}: key {key:?}");
        }
        // The final epoch reflects the whole lineage: split (1), merge (2),
        // split (3).
        let l = sim.leader_of(ClusterId(13)).unwrap();
        assert_eq!(sim.node(l).unwrap().current_eterm().epoch(), 3);
        sim.check_invariants();
        sim.check_linearizability();
    }
}
