//! The paper's Figure 3, end to end: `Cold` splits three ways while the
//! message to `Csub.3` drops (steps a–c); `Csub.3` saves itself by pulling;
//! then `Csub.1` and `Csub.2` merge into `C'new` while `Csub.3` keeps
//! running independently (steps d–h).

use recraft::core::NodeEvent;
use recraft::net::AdminCmd;
use recraft::sim::{Action, Sim, SimConfig, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec, TxId,
};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

#[test]
fn figure3_series_of_split_and_merge() {
    let mut sim = Sim::new(SimConfig::with_seed(0xF1633));
    let cold = ClusterId(1);
    sim.boot_cluster(cold, &ids(1..=9), RangeSet::full());
    sim.run_until_leader(cold);
    sim.add_clients(4, Workload::default());
    sim.run_for(2 * SEC);

    // --- (a-b) Split three ways; Csub.3's nodes are cut off before the
    // leave phase, so they miss SplitLeaveJoint and the commit notification.
    let leader = sim.leader_of(cold).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (r1, rest) = base.ranges().ranges()[0].split_at(b"k00003333").unwrap();
    let (r2, r3) = rest.split_at(b"k00006666").unwrap();
    // Put the leader in sub.1 so the split completes on its side.
    let mut members = ids(1..=9);
    members.retain(|n| *n != leader);
    let sub1: Vec<NodeId> = std::iter::once(leader)
        .chain(members[..2].iter().copied())
        .collect();
    let sub2: Vec<NodeId> = members[2..5].to_vec();
    let sub3: Vec<NodeId> = members[5..].to_vec();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(11), sub1.clone(), RangeSet::from(r1)).unwrap(),
            ClusterConfig::new(ClusterId(12), sub2.clone(), RangeSet::from(r2)).unwrap(),
            ClusterConfig::new(ClusterId(13), sub3.clone(), RangeSet::from(r3)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    // Cut two of sub.3's nodes off (the joint entry can still commit with
    // 5 of 9; Cnew commits with sub.1's majority).
    let missed: Vec<NodeId> = sub3[..2].to_vec();
    let connected: Vec<NodeId> = ids(1..=9)
        .into_iter()
        .filter(|n| !missed.contains(n))
        .collect();
    sim.schedule_action(
        sim.time(),
        Action::Partition(vec![missed.clone(), connected]),
    );
    sim.admin(cold, AdminCmd::Split(spec));
    sim.run_until_pred(40 * SEC, |s| {
        s.leader_of(ClusterId(11)).is_some() && s.leader_of(ClusterId(12)).is_some()
    });
    // (c) Csub.3 is stuck in the old epoch...
    assert!(missed
        .iter()
        .all(|n| sim.node(*n).unwrap().current_eterm().epoch() == 0));
    // ...until the partition heals and it pulls itself into epoch 1.
    sim.schedule_action(sim.time() + SEC, Action::Heal);
    sim.run_until_pred(90 * SEC, |s| {
        s.leader_of(ClusterId(13)).is_some()
            && missed
                .iter()
                .all(|n| s.node(*n).unwrap().current_eterm().epoch() == 1)
    });
    assert!(
        sim.trace()
            .iter()
            .any(|(_, _, e)| matches!(e, NodeEvent::PulledEntries { .. })),
        "pull-based recovery was exercised"
    );
    sim.run_for(2 * SEC);

    // --- (d-h) Csub.1 and Csub.2 merge into C'new while Csub.3 runs on.
    let tx = MergeTx {
        id: TxId(42),
        coordinator: ClusterId(11),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(11),
                members: sub1.iter().copied().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(12),
                members: sub2.iter().copied().collect(),
            },
        ],
        new_cluster: ClusterId(21),
        resume_members: None,
    };
    let sub3_ops_before = sim.completed_ops();
    sim.admin(ClusterId(11), AdminCmd::Merge(tx));
    sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(21)).is_some());
    assert_eq!(sim.members_of(ClusterId(21)).len(), 6);
    // Csub.3 was never disturbed: still epoch 1, still serving.
    let l13 = sim.leader_of(ClusterId(13)).unwrap();
    assert_eq!(sim.node(l13).unwrap().current_eterm().epoch(), 1);
    // C'new is at epoch max(1,1)+1 = 2.
    let l21 = sim.leader_of(ClusterId(21)).unwrap();
    assert_eq!(sim.node(l21).unwrap().current_eterm().epoch(), 2);
    sim.run_for(3 * SEC);
    assert!(sim.completed_ops() > sub3_ops_before, "service continued");

    sim.check_invariants();
    sim.check_linearizability();
}
