//! The typed client protocol end to end: sessions with exactly-once writes,
//! deliberate duplicate deliveries, ReadIndex reads, and survival of the
//! session table through a full split and a full merge.

use recraft::core::NodeEvent;
use recraft::kv::KvCmd;
use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{
    ClientOp, ClientRequest, ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet,
    SessionId, SplitSpec, TxId,
};
use recraft_storage::{EntryPayload, LogStore};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn two_way_spec(sim: &Sim, src: ClusterId) -> SplitSpec {
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00000100").unwrap();
    SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap()
}

/// The acceptance scenario: several client sessions with injected duplicate
/// deliveries and a ReadIndex read mix drive traffic through a full split
/// and a full merge. The history must linearize, every `(session, seq)`
/// must apply exactly once, and the ReadIndex reads must appear in the
/// history without any corresponding log entry.
#[test]
fn sessions_with_duplicates_through_split_and_merge() {
    let mut sim = Sim::new(SimConfig::with_seed(0x5E55));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    // Four sessions: 30% ReadIndex reads, 25% of writes delivered twice.
    sim.add_clients(
        4,
        Workload {
            key_count: 200,
            value_size: 64,
            get_ratio: 0.3,
            dup_prob: 0.25,
            reads_via_log: false,
            pipeline: 1,
            ..Workload::default()
        },
    );
    sim.run_for(3 * SEC);

    // Split under load.
    let spec = two_way_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    sim.run_for(3 * SEC);

    // Merge back under load.
    let tx = MergeTx {
        id: TxId(77),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_until_pred(60 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    sim.run_for(3 * SEC);

    assert!(sim.completed_ops() > 500, "traffic flowed throughout");

    // Safety: state machine + election safety, client-visible
    // linearizability, and the exactly-once contract despite the duplicate
    // deliveries and reconfigurations.
    sim.check_invariants();
    sim.check_linearizability();
    sim.assert_exactly_once();

    // ReadIndex actually served reads...
    let served = sim.read_index_served();
    assert!(served > 50, "ReadIndex served reads ({served})");
    // ...and none of them put an entry in any log: with reads off the log,
    // no Get command exists anywhere.
    for node in sim.nodes() {
        for entry in node.log().tail(node.log().first_index()) {
            let cmd = match &entry.payload {
                EntryPayload::Command(cmd) => cmd,
                EntryPayload::SessionCommand { cmd, .. } => cmd,
                _ => continue,
            };
            if let Ok(KvCmd::Get { .. }) = KvCmd::decode(cmd) {
                panic!("a read reached the log on {}", node.id());
            }
        }
    }
    // The merged cluster still remembers every session's progress.
    let leader = sim.leader_of(ClusterId(20)).unwrap();
    let table = sim.node(leader).unwrap().sessions();
    assert!(
        (0..4).any(|s| table.last_seq(SessionId(s)).is_some()),
        "session table survived split + merge"
    );
}

fn put_req(session: u64, seq: u64, key: &[u8], value: &[u8]) -> ClientRequest {
    ClientRequest {
        session: SessionId(session),
        seq,
        op: ClientOp::Command {
            key: key.to_vec(),
            cmd: KvCmd::Put {
                key: key.to_vec(),
                value: bytes::Bytes::copy_from_slice(value),
            }
            .encode(),
        },
    }
}

fn apply_sites(sim: &Sim, digest: u64) -> std::collections::BTreeSet<(ClusterId, u64)> {
    sim.trace()
        .iter()
        .filter_map(|(_, _, e)| match e {
            NodeEvent::AppliedCommand {
                cluster,
                index,
                digest: d,
            } if *d == digest => Some((*cluster, index.0)),
            _ => None,
        })
        .collect()
}

/// The same `(session, seq)` is delivered twice to a leader whose links are
/// then cut (the entry stays uncommitted), retried against the replacement
/// leader, and retried once more against the post-split owner cluster — it
/// must apply exactly once, on the surviving owner.
#[test]
fn duplicate_retry_through_leader_change_and_split_applies_once() {
    let mut sim = Sim::new(SimConfig::with_seed(0xD0D0));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    let leader0 = sim.leader_of(src).unwrap();

    let key = b"k00000042"; // lands in the low (c10) half of the split
    let req = put_req(9000, 1, key, b"exactly-once!");
    let digest = recraft::core::events::fingerprint(
        &KvCmd::decode(match &req.op {
            ClientOp::Command { cmd, .. } => cmd,
            ClientOp::Get { .. } => unreachable!(),
        })
        .unwrap()
        .encode(),
    );

    // Duplicate delivery to the original leader, whose replication links are
    // cut at the same instant: the entry is appended but can never commit.
    sim.post_request(leader0, req.clone());
    sim.post_request(leader0, req.clone());
    let cuts: Vec<(NodeId, NodeId)> = ids(1..=6)
        .into_iter()
        .filter(|n| *n != leader0)
        .map(|n| (leader0, n))
        .collect();
    sim.schedule_action(sim.time(), recraft::sim::Action::CutLinks(cuts));
    sim.run_for(SEC / 2);
    sim.schedule_action(sim.time(), recraft::sim::Action::Crash(leader0));
    sim.schedule_action(sim.time() + 1, recraft::sim::Action::Heal);
    sim.run_until_pred(30 * SEC, |s| s.leader_of(src).is_some_and(|l| l != leader0));
    let leader1 = sim.leader_of(src).unwrap();

    // The retry against the replacement leader: the entry never committed,
    // so the session table accepts (and applies) it here.
    sim.post_request(leader1, req.clone());
    sim.run_for(SEC);
    assert_eq!(apply_sites(&sim, digest).len(), 1, "applied once on retry");
    // The session continues normally afterwards.
    sim.post_request(leader1, put_req(9000, 2, b"k00000043", b"second"));
    sim.run_for(SEC / 2);

    // The crashed ex-leader comes back with its stale duplicate entry; log
    // reconciliation must discard it, not apply it.
    sim.schedule_action(sim.time(), recraft::sim::Action::Restart(leader0));
    sim.run_for(2 * SEC);
    assert_eq!(
        apply_sites(&sim, digest).len(),
        1,
        "no replay after restart"
    );

    // Split, then retry the same (session, seq) against the owner cluster.
    let spec = two_way_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    let owner_leader = sim.leader_of(ClusterId(10)).unwrap();
    sim.post_request(owner_leader, req.clone());
    // And against the non-owner too: it must not apply there either.
    let other_leader = sim.leader_of(ClusterId(11)).unwrap();
    sim.post_request(other_leader, req);
    sim.run_for(2 * SEC);

    let sites = apply_sites(&sim, digest);
    assert_eq!(sites.len(), 1, "exactly once across the split: {sites:?}");
    // The value is live on the owner cluster.
    let store = sim.node(owner_leader).unwrap().state_machine();
    assert_eq!(
        store.get(key).map(|b| b.as_ref()),
        Some(b"exactly-once!".as_ref())
    );
    sim.assert_exactly_once();
    sim.check_invariants();
}

/// Reordered deliveries: once a newer `(session, seq)` applied, an older one
/// arriving late is rejected as stale and never reaches the state machine.
#[test]
fn reordered_stale_seq_never_applies() {
    let mut sim = Sim::new(SimConfig::with_seed(0xBEEF));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=3), RangeSet::full());
    sim.run_until_leader(src);
    let leader = sim.leader_of(src).unwrap();

    let newer = put_req(7000, 5, b"k00000001", b"v5");
    let older = put_req(7000, 3, b"k00000001", b"v3");
    let older_digest = recraft::core::events::fingerprint(
        &KvCmd::Put {
            key: b"k00000001".to_vec(),
            value: bytes::Bytes::from_static(b"v3"),
        }
        .encode(),
    );
    sim.post_request(leader, newer);
    sim.run_for(SEC);
    sim.post_request(leader, older);
    sim.run_for(SEC);

    assert!(
        apply_sites(&sim, older_digest).is_empty(),
        "stale request must never apply"
    );
    let store = sim.node(leader).unwrap().state_machine();
    assert_eq!(
        store.get(b"k00000001").map(|b| b.as_ref()),
        Some(b"v5".as_ref())
    );
    sim.assert_exactly_once();
}

/// The one-shot typed API drives exactly-once writes and ReadIndex reads
/// without any raw-bytes escape hatch.
#[test]
fn execute_api_round_trips() {
    let mut sim = Sim::new(SimConfig::with_seed(0xAB1E));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=3), RangeSet::full());
    sim.run_until_leader(src);

    let put = KvCmd::Put {
        key: b"k00000007".to_vec(),
        value: bytes::Bytes::from_static(b"lucky"),
    };
    sim.execute(b"k00000007".to_vec(), put.encode())
        .expect("write accepted");
    let got = sim.execute_get(b"k00000007".to_vec()).expect("read served");
    assert_eq!(got, Some(bytes::Bytes::from_static(b"lucky")));
    let missing = sim.execute_get(b"k00000009".to_vec()).expect("read served");
    assert_eq!(missing, None);
    assert!(sim.read_index_served() >= 2);
    sim.check_invariants();
}
