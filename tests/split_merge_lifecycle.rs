//! Cross-crate integration: the full life of a sharded deployment —
//! boot → load → split → independent service → merge → resume — with
//! continuous safety and linearizability verification.

use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec, TxId,
};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn two_way_spec(sim: &Sim, src: ClusterId) -> SplitSpec {
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00005000").unwrap();
    SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap()
}

#[test]
fn full_lifecycle_split_then_merge() {
    let mut sim = Sim::new(SimConfig::with_seed(0x11FE));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(8, Workload::default());
    sim.run_for(3 * SEC);
    let ops_single = sim.completed_ops();
    assert!(ops_single > 500, "baseline traffic flows");

    // Split.
    let spec = two_way_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    // Epochs bumped everywhere; cluster ids disjoint.
    for n in sim.nodes() {
        assert_eq!(n.current_eterm().epoch(), 1, "{} epoch", n.id());
        assert!(
            n.cluster() == ClusterId(10) || n.cluster() == ClusterId(11),
            "{} cluster",
            n.id()
        );
    }
    sim.run_for(3 * SEC);

    // Merge back.
    let tx = MergeTx {
        id: TxId(9),
        coordinator: ClusterId(11),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    sim.admin(ClusterId(11), AdminCmd::Merge(tx));
    sim.run_until_pred(60 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    // Epoch is max + 1 = 2; all six nodes serve the merged cluster.
    assert_eq!(sim.members_of(ClusterId(20)).len(), 6);
    let leader = sim.leader_of(ClusterId(20)).unwrap();
    assert_eq!(sim.node(leader).unwrap().current_eterm().epoch(), 2);
    // The merged cluster serves the full keyspace.
    sim.run_for(3 * SEC);
    assert!(
        sim.completed_ops() > ops_single,
        "traffic resumed after merge"
    );

    sim.check_invariants();
    sim.check_linearizability();
}

#[test]
fn merge_with_resumption_resize() {
    // §III-C2 "Resizing the Merged Cluster": resume with only one whole
    // subcluster's members.
    let mut sim = Sim::new(SimConfig::with_seed(0x11FF));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(2, Workload::default());
    sim.run_for(2 * SEC);
    let spec = two_way_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    sim.run_for(SEC);

    let tx = MergeTx {
        id: TxId(10),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        // Keep only subcluster 10's members — a valid resumption subset.
        resume_members: Some(ids(1..=3).into_iter().collect()),
    };
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_until_pred(60 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    let members = sim.members_of(ClusterId(20));
    assert_eq!(members.len(), 3, "resumed with one subcluster: {members:?}");
    assert!(members.iter().all(|n| n.0 <= 3));
    // Nodes 4..6 retired but the merged cluster holds ALL the data.
    let leader = sim.leader_of(ClusterId(20)).unwrap();
    assert_eq!(
        sim.node(leader).unwrap().config().ranges(),
        &RangeSet::full()
    );
    sim.run_for(2 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
}

#[test]
fn three_way_split_and_three_way_merge() {
    // "do not allow three or more clusters split/merge" is a TC limitation
    // the paper calls out — ReCraft does both natively.
    let mut sim = Sim::new(SimConfig::with_seed(0x3A3));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=9), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(4, Workload::default());
    sim.run_for(2 * SEC);

    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, rest) = base.ranges().ranges()[0].split_at(b"k00003333").unwrap();
    let (mid, hi) = rest.split_at(b"k00006666").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(mid)).unwrap(),
            ClusterConfig::new(ClusterId(12), ids(7..=9), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(40 * SEC, |s| {
        [10, 11, 12]
            .iter()
            .all(|c| s.leader_of(ClusterId(*c)).is_some())
    });
    sim.run_for(2 * SEC);

    // Merge all three back at once.
    let tx = MergeTx {
        id: TxId(30),
        coordinator: ClusterId(11),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(12),
                members: ids(7..=9).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(21),
        resume_members: None,
    };
    sim.admin(ClusterId(11), AdminCmd::Merge(tx));
    sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(21)).is_some());
    assert_eq!(sim.members_of(ClusterId(21)).len(), 9);
    sim.run_for(2 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
}
