//! Compile-and-run smoke check for every example: each one must run to
//! completion (exit 0) and print its final safety-check line.
//!
//! Runs the examples in release mode through cargo — the build is shared
//! with a previously-built target directory, so the per-example cost is the
//! simulation itself (a few seconds each).

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "membership_change",
    "partition_recovery",
    "consolidate_merge",
    "shard_rebalance",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--example", example])
            .env("CARGO_NET_OFFLINE", "true")
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example {example}: {e}"));
        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            output.status.success(),
            "example {example} failed ({}):\n--- stdout\n{stdout}\n--- stderr\n{stderr}",
            output.status
        );
        assert!(
            stdout.contains("all safety checks passed"),
            "example {example} did not reach its safety checks:\n{stdout}"
        );
    }
}
