//! Cross-crate property tests: protocol invariants under randomized inputs.

use proptest::prelude::*;
use recraft::core::quorum::QuorumSpec;
use recraft::core::votes::{jc_worst_votes, Plan};
use recraft::types::config::{majority, resize_quorum};
use recraft::types::{ClusterConfig, ClusterId, KeyRange, NodeId, RangeSet, SplitSpec};
use std::collections::BTreeSet;

fn node_set(n: u64) -> BTreeSet<NodeId> {
    (1..=n).map(NodeId).collect()
}

proptest! {
    /// P2' holds along every membership plan: consecutive configurations'
    /// quorums always intersect.
    #[test]
    fn membership_plans_preserve_overlap(n_old in 1usize..16, n_new in 1usize..16) {
        let plan = Plan::new(n_old, n_new);
        let mut n = n_old;
        let mut q = majority(n_old);
        for stage in &plan.stages {
            prop_assert!(q + stage.quorum > n.max(stage.members));
            prop_assert!(stage.quorum >= majority(stage.members));
            prop_assert!(stage.quorum <= stage.members);
            n = stage.members;
            q = stage.quorum;
        }
        prop_assert_eq!(n, n_new);
        prop_assert_eq!(q, majority(n_new));
        // And the paper's Figure-5 guarantee.
        if n_old != n_new {
            prop_assert!(plan.max_intermediate_votes() <= jc_worst_votes(n_old, n_new));
        }
    }

    /// The resize quorum really is the minimal overlap-forcing quorum.
    #[test]
    fn resize_quorum_is_minimal(n_old in 1usize..24, n_new in 1usize..24) {
        let q_old = majority(n_old);
        let q = resize_quorum(n_old, q_old, n_new);
        prop_assert!(q_old + q > n_old.max(n_new));
        prop_assert!(q_old + (q - 1) <= n_old.max(n_new));
    }

    /// Joint quorums are satisfied exactly when every group is.
    #[test]
    fn joint_quorum_semantics(
        sizes in prop::collection::vec(1u64..6, 2..4),
        votes_mask in prop::collection::vec(any::<bool>(), 0..20)
    ) {
        let mut offset = 0u64;
        let mut groups = Vec::new();
        let mut all: Vec<NodeId> = Vec::new();
        for s in &sizes {
            let g: BTreeSet<NodeId> = (offset + 1..=offset + s).map(NodeId).collect();
            all.extend(g.iter().copied());
            groups.push(g);
            offset += s;
        }
        let spec = QuorumSpec::joint_majorities(groups.iter());
        let votes: BTreeSet<NodeId> = all
            .iter()
            .zip(votes_mask.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, keep)| **keep)
            .map(|(n, _)| *n)
            .collect();
        let expected = groups.iter().all(|g| {
            votes.intersection(g).count() >= majority(g.len())
        });
        prop_assert_eq!(spec.satisfied(&votes), expected);
    }

    /// Any two-way split at any interior key yields disjoint subclusters
    /// whose ranges partition the key space.
    #[test]
    fn split_specs_partition_keyspace(
        boundary in 1u64..9_999,
        probe in 0u64..10_000,
        members in 4u64..10,
    ) {
        let parent = node_set(members);
        let key = format!("k{boundary:08}");
        let (lo, hi) = KeyRange::full().split_at(key.as_bytes()).unwrap();
        let half = members / 2;
        let spec = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), (1..=half).map(NodeId), RangeSet::from(lo))
                    .unwrap(),
                ClusterConfig::new(
                    ClusterId(11),
                    (half + 1..=members).map(NodeId),
                    RangeSet::from(hi),
                )
                .unwrap(),
            ],
            &parent,
            &RangeSet::full(),
        )
        .unwrap();
        let probe_key = format!("k{probe:08}");
        let owners = spec
            .subclusters()
            .iter()
            .filter(|c| c.ranges().contains(probe_key.as_bytes()))
            .count();
        prop_assert_eq!(owners, 1, "every key owned by exactly one subcluster");
        // Member partition: every parent node in exactly one subcluster.
        for m in &parent {
            let in_subs = spec
                .subclusters()
                .iter()
                .filter(|c| c.contains(*m))
                .count();
            prop_assert!(in_subs <= 1);
        }
    }

    /// Epoch-prefixed term ordering: any reconfiguration's epoch bump
    /// dominates any term progression within the old epoch.
    #[test]
    fn epoch_dominates_any_term(e in 0u32..1000, t1 in 0u32..u32::MAX, t2 in 0u32..u32::MAX) {
        use recraft::types::EpochTerm;
        prop_assert!(EpochTerm::new(e + 1, t2) > EpochTerm::new(e, t1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Short randomized client traffic against a real simulated cluster is
    /// always linearizable (end-to-end, through the full stack).
    #[test]
    fn short_runs_are_linearizable(seed in 0u64..64) {
        use recraft::sim::{Sim, SimConfig, Workload};
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        sim.boot_cluster(ClusterId(1), &[NodeId(1), NodeId(2), NodeId(3)], RangeSet::full());
        sim.run_until_leader(ClusterId(1));
        sim.add_clients(3, Workload { key_count: 10, get_ratio: 0.4, ..Workload::default() });
        sim.run_for(1_500_000);
        sim.check_invariants();
        sim.check_linearizability();
    }
}
