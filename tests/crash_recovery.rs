//! Crash–restart scenarios: nodes are power-cut at arbitrary write points
//! and rebooted from their data dirs (full storage recovery on the WAL
//! backend; in-process restart on the in-memory backend — both backends run
//! every scenario, which is exactly what the CI backend matrix exercises).
//!
//! The assertions are the durable-substrate acceptance criteria: no
//! committed entry, session-table row, or in-flight reconfiguration step is
//! lost across split, merge, and membership-change crashes — witnessed by
//! the linearizability checker, the exactly-once contract, and the online
//! safety trackers.

use recraft::net::AdminCmd;
use recraft::sim::{Action, Sim, SimConfig, Workload};
use recraft::storage::LogStore as _;
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SessionId, SplitSpec,
    TxId,
};
use std::collections::BTreeSet;

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn workload() -> Workload {
    Workload {
        key_count: 100,
        value_size: 32,
        get_ratio: 0.2,
        dup_prob: 0.1,
        reads_via_log: false,
        pipeline: 1,
        ..Workload::default()
    }
}

/// Dumps the sim trace for CI artifact upload, returning the path.
fn save_trace(sim: &Sim, name: &str) {
    let path = std::path::Path::new("target")
        .join("sim-traces")
        .join(format!("{name}.log"));
    sim.dump_trace(&path).expect("write trace");
}

fn check_all(sim: &Sim, name: &str) {
    save_trace(sim, name);
    sim.check_invariants();
    sim.check_linearizability();
    sim.assert_exactly_once();
}

/// A rolling storm of power-cuts and reboots over a cluster under client
/// load: every committed write survives, the history linearizes, and the
/// rebooted nodes converge back to the cluster state.
#[test]
fn committed_writes_survive_power_cut_storm() {
    let mut sim = Sim::new(SimConfig::with_seed(0xC4A5));
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &ids(1..=5), RangeSet::full());
    sim.run_until_leader(cluster);
    sim.add_clients(3, workload());
    sim.run_for(2 * SEC);

    // Power-cut each node in turn at an arbitrary point mid-traffic and
    // reboot it from disk two virtual seconds later (quorum always holds).
    for (i, node) in ids(1..=5).into_iter().enumerate() {
        let at = sim.time() + (i as u64) * 3 * SEC;
        sim.schedule_action(at, Action::PowerCut(node));
        sim.schedule_action(at + 2 * SEC, Action::RebootFromDisk(node));
    }
    sim.run_for(18 * SEC);
    sim.run_until_leader(cluster);
    sim.run_for(3 * SEC);

    assert!(
        sim.completed_ops() > 200,
        "traffic flowed through the storm"
    );
    check_all(&sim, "power_cut_storm");

    // Every rebooted node converged back to the same applied prefix.
    let max_applied = sim.nodes().map(|n| n.applied_index().0).max().unwrap();
    for node in sim.nodes() {
        assert!(
            node.applied_index().0 + 64 > max_applied,
            "node {} stuck at {} (cluster at {max_applied})",
            node.id(),
            node.applied_index()
        );
    }
}

/// The leader itself is power-cut mid-write; its acknowledged writes are in
/// a quorum and survive, its torn unacknowledged tail is discarded, and its
/// session table rows come back from its own disk.
#[test]
fn leader_power_cut_preserves_sessions_and_commits() {
    let mut sim = Sim::new(SimConfig::with_seed(0x1EAD));
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &ids(1..=3), RangeSet::full());
    sim.run_until_leader(cluster);

    // Exactly-once session writes through the one-shot path.
    for i in 0..20 {
        sim.execute(
            format!("k{i:02}").into_bytes(),
            recraft::kv::KvCmd::Put {
                key: format!("k{i:02}").into_bytes(),
                value: bytes::Bytes::from(format!("v{i}")),
            }
            .encode(),
        )
        .expect("write completes");
    }
    let leader = sim.leader_of(cluster).unwrap();
    sim.power_cut(leader);
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(cluster).is_some_and(|l| l != leader)
    });
    sim.reboot(leader);
    sim.run_for(5 * SEC);

    // The rebooted ex-leader rejoined and holds the whole history again,
    // including the session dedup table (it rides in the applied state).
    let node = sim.node(leader).unwrap();
    assert!(node.applied_index().0 >= 20, "caught back up");
    assert!(
        node.sessions().last_seq(SessionId(0xF_0000_0000)).is_some(),
        "session table recovered on the rebooted node"
    );
    // A replayed duplicate of an already-applied write is still deduplicated
    // by the recovered table (assert_exactly_once would trip otherwise).
    check_all(&sim, "leader_power_cut");
}

/// ROADMAP item 4b: a steady-traffic reboot on the durable machine trusts
/// the image it recovered from its own segments — tagged with this node's
/// lineage and watermarked at a flushed applied index — and replays only
/// the log suffix past the watermark, instead of re-installing the whole
/// consensus snapshot (an O(keyspace) rewrite). `restore_count() == 0`
/// witnesses the skip; the linearizability and exactly-once checks witness
/// that the suffix replay (including its session-table reconstruction)
/// is indistinguishable from the full restore.
#[test]
fn durable_reboot_replays_only_the_log_suffix() {
    let mut cfg = SimConfig::with_seed(0x0DE7)
        .with_backend(recraft::sim::Backend::Wal)
        .with_machine(recraft::sim::SmKind::Durable);
    // Keep log compaction out of the window: a compaction would raise the
    // commit floor past the machine's flush watermark and (correctly, but
    // not what this test pins) force the snapshot fallback.
    cfg.timing.compaction_threshold = 1 << 20;
    let mut sim = Sim::new(cfg);
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &ids(1..=3), RangeSet::full());
    sim.run_until_leader(cluster);
    // Large values push the durable machine past its memtable threshold so
    // a flush advances the watermark past zero: the reboot then genuinely
    // splices "recovered image at w" + "log suffix past w".
    sim.add_clients(
        2,
        Workload {
            key_count: 100,
            value_size: 4096,
            get_ratio: 0.1,
            dup_prob: 0.1,
            ..Workload::default()
        },
    );
    sim.run_for(3 * SEC);
    let victim = NodeId(2);
    sim.power_cut(victim);
    sim.run_for(SEC);
    sim.reboot(victim);
    sim.run_for(3 * SEC);

    let node = sim.node(victim).unwrap();
    let watermark = node
        .state_machine()
        .as_durable()
        .expect("durable machine")
        .watermark();
    assert!(
        watermark.0 > 0,
        "the scenario must exercise a flushed image, not an empty store"
    );
    assert_eq!(
        node.state_machine().restore_count(),
        0,
        "steady-traffic reboot must not re-install the snapshot"
    );
    // The rebooted node converges back to the cluster's applied prefix.
    let max_applied = sim.nodes().map(|n| n.applied_index().0).max().unwrap();
    assert!(
        node.applied_index().0 + 64 > max_applied,
        "rebooted node caught up ({} vs {max_applied})",
        node.applied_index()
    );
    check_all(&sim, "odelta_reboot");
}

/// The §V reconfiguration history must survive a reboot (on the WAL backend
/// it rides in the persisted node metadata; the in-memory backend keeps it
/// through its in-process restart) — and the power-cut fault must leave a
/// trace marker when the backend degrades it to a plain crash.
#[test]
fn reconfig_history_survives_reboot() {
    let mut sim = Sim::new(SimConfig::with_seed(0x9157));
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &ids(1..=4), RangeSet::full());
    sim.run_until_leader(cluster);
    // A RemoveAndResize (§IV-A) writes a "resize" record on every member.
    let req = sim.admin(
        cluster,
        AdminCmd::RemoveAndResize([NodeId(4)].into_iter().collect()),
    );
    sim.run_until_pred(30 * SEC, |s| s.admin_completed_at(req).is_some());
    sim.run_for(2 * SEC);
    let survivor = NodeId(1);
    assert!(
        sim.node(survivor)
            .unwrap()
            .history()
            .iter()
            .any(|r| r.kind == "resize"),
        "history recorded before the crash"
    );
    sim.power_cut(survivor);
    sim.reboot(survivor);
    sim.run_until_leader(cluster);
    sim.run_for(2 * SEC);
    let history = sim.node(survivor).unwrap().history();
    assert!(
        history.iter().any(|r| r.kind == "resize"),
        "reconfiguration history survives the reboot, got {history:?}"
    );
    // Degradation marker: the in-memory backend cannot tear, so the power
    // cut must be flagged as degraded in the trace; the WAL backend
    // performs a real tear and must NOT be flagged.
    let degraded = sim
        .trace()
        .iter()
        .any(|(_, _, e)| matches!(e, recraft::core::NodeEvent::PowerCutDegraded { .. }));
    let persistent = sim.node(survivor).unwrap().log().persistent();
    assert_eq!(
        degraded, !persistent,
        "power-cut degradation marker tracks the backend"
    );
    check_all(&sim, "reconfig_history_reboot");
}

fn two_way_spec(sim: &Sim, src: ClusterId) -> SplitSpec {
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00000050").unwrap();
    SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap()
}

/// A node is power-cut while a split is in flight and reboots mid-protocol:
/// the Cjoint/Cnew steps on its disk put it back into the split, which then
/// completes on all six nodes.
#[test]
fn split_completes_across_a_mid_split_crash() {
    let mut sim = Sim::new(SimConfig::with_seed(0x5711));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(2, workload());
    sim.run_for(SEC);

    let spec = two_way_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    // Crash one node of each planned subcluster immediately after the split
    // starts — an arbitrary point inside the reconfiguration window.
    let at = sim.time() + SEC / 4;
    sim.schedule_action(at, Action::PowerCut(NodeId(2)));
    sim.schedule_action(at + SEC / 8, Action::PowerCut(NodeId(5)));
    sim.schedule_action(at + 3 * SEC, Action::RebootFromDisk(NodeId(2)));
    sim.schedule_action(at + 3 * SEC, Action::RebootFromDisk(NodeId(5)));

    sim.run_until_pred(60 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    sim.run_for(5 * SEC);

    // The rebooted nodes ended up in their planned subclusters.
    assert_eq!(sim.node(NodeId(2)).unwrap().cluster(), ClusterId(10));
    assert_eq!(sim.node(NodeId(5)).unwrap().cluster(), ClusterId(11));
    check_all(&sim, "mid_split_crash");
}

/// A participant node is power-cut during a merge (2PC + data exchange) and
/// reboots from disk: the merged cluster resumes and rescues the straggler.
#[test]
fn merge_completes_across_a_mid_merge_crash() {
    let mut sim = Sim::new(SimConfig::with_seed(0x3E6E));
    let (lo, hi) = recraft::types::KeyRange::full().split_at(b"m").unwrap();
    sim.boot_cluster(ClusterId(10), &ids(1..=3), RangeSet::from(lo));
    sim.boot_cluster(ClusterId(11), &ids(4..=6), RangeSet::from(hi));
    sim.run_until_leader(ClusterId(10));
    sim.run_until_leader(ClusterId(11));
    sim.run_for(SEC);

    let tx = MergeTx {
        id: TxId(9),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    let at = sim.time() + SEC / 3;
    sim.schedule_action(at, Action::PowerCut(NodeId(4)));
    sim.schedule_action(at + 4 * SEC, Action::RebootFromDisk(NodeId(4)));

    sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    // The rebooted straggler is rescued into the merged cluster.
    sim.run_until_pred(60 * SEC, |s| {
        s.node(NodeId(4))
            .is_some_and(|n| n.cluster() == ClusterId(20))
    });
    check_all(&sim, "mid_merge_crash");
}

/// A member is power-cut during an AddAndResize membership change; after its
/// reboot the fold has happened everywhere and the new member serves.
#[test]
fn membership_change_completes_across_a_crash() {
    let mut sim = Sim::new(SimConfig::with_seed(0xADD1));
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &ids(1..=3), RangeSet::full());
    sim.run_until_leader(cluster);
    sim.boot_joiner(NodeId(4));
    sim.boot_joiner(NodeId(5));

    let add: BTreeSet<NodeId> = [NodeId(4), NodeId(5)].into_iter().collect();
    let req = sim.admin(cluster, AdminCmd::AddAndResize(add));
    let at = sim.time() + SEC / 5;
    sim.schedule_action(at, Action::PowerCut(NodeId(2)));
    sim.schedule_action(at + 2 * SEC, Action::RebootFromDisk(NodeId(2)));
    sim.run_until_pred(60 * SEC, |s| s.admin_completed_at(req).is_some());
    sim.run_for(10 * SEC);

    // Every live node folded to the 5-member majority-quorum config,
    // including the one that crashed mid-change.
    for node in sim.nodes() {
        let cfg = node.config();
        assert_eq!(cfg.members().len(), 5, "node {} folded", node.id());
        assert_eq!(cfg.quorum_size(), 3, "quorum resized back to majority");
    }
    check_all(&sim, "mid_membership_crash");
}

/// The CI soak: a fixed seed set of longer crash storms (run explicitly by
/// the crash-recovery job; `--ignored` keeps it out of the default suite).
#[test]
#[ignore = "CI soak job (run with --ignored)"]
fn crash_soak_fixed_seeds() {
    for seed in [0x50AC_0001u64, 0x50AC_0002, 0x50AC_0003, 0x50AC_0004] {
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &ids(1..=5), RangeSet::full());
        sim.run_until_leader(cluster);
        sim.add_clients(3, workload());
        sim.run_for(SEC);
        // Ten staggered power-cut/reboot rounds across the member set.
        for round in 0u64..10 {
            let node = NodeId(1 + (seed.wrapping_add(round) % 5));
            let at = sim.time() + round * 2 * SEC;
            sim.schedule_action(at, Action::PowerCut(node));
            sim.schedule_action(at + 3 * SEC / 2, Action::RebootFromDisk(node));
        }
        sim.run_for(22 * SEC);
        sim.run_until_leader(cluster);
        sim.run_for(2 * SEC);
        assert!(sim.completed_ops() > 100, "seed {seed:#x}: traffic flowed");
        check_all(&sim, &format!("soak_{seed:x}"));
    }
}
