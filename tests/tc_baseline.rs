//! The TC baseline reaches the same end states as ReCraft's split and merge
//! (data placement, ranges, service), just through the external cluster
//! manager — and unlike ReCraft it dies with the CM.

use recraft::kv::KvStore;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::tc::{tc_merge, tc_split, CmFailure, TcSubcluster};
use recraft::types::{ClusterConfig, ClusterId, KeyRange, NodeId, RangeSet};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

#[test]
fn tc_split_places_data_like_recraft() {
    let mut sim = Sim::new(SimConfig::with_seed(0x7C57));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(4, Workload::default());
    sim.run_for(3 * SEC);
    sim.schedule_action(sim.time(), recraft::sim::Action::StopClients);
    sim.run_for(SEC);

    let (lo, hi) = KeyRange::full().split_at(b"k00005000").unwrap();
    // TC keeps nodes 1-3 as the source with the low range; nodes 4-6 restart
    // as cluster 11 with the high range... except TC must REMOVE 4-6 first.
    let report = tc_split(
        &mut sim,
        src,
        RangeSet::from(lo.clone()),
        &[TcSubcluster {
            cluster: ClusterId(11),
            members: ids(4..=6),
            ranges: RangeSet::from(hi.clone()),
        }],
        CmFailure::None,
    );
    assert!(report.completed);
    assert!(report.remove_us > 0 && report.restart_us > 0);

    // Both clusters serve their ranges with the right data.
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(src).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    let l_src = sim.leader_of(src).unwrap();
    let l_new = sim.leader_of(ClusterId(11)).unwrap();
    assert_eq!(
        sim.node(l_src).unwrap().config().ranges(),
        &RangeSet::from(lo)
    );
    assert_eq!(
        sim.node(l_new).unwrap().config().ranges(),
        &RangeSet::from(hi)
    );
    // Every key ended up on exactly one side.
    let src_keys = sim.node(l_src).unwrap().state_machine().len();
    let new_keys = sim.node(l_new).unwrap().state_machine().len();
    assert!(src_keys > 0 && new_keys > 0);
    sim.check_invariants();
}

#[test]
fn tc_merge_consolidates_data() {
    let mut sim = Sim::new(SimConfig::with_seed(0x7C58));
    let (lo, hi) = KeyRange::full().split_at(b"k00005000").unwrap();
    let c10 = ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap();
    let c11 = ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap();
    for id in ids(1..=3) {
        sim.boot_node_with_store(id, c10.clone(), KvStore::new());
    }
    for id in ids(4..=6) {
        sim.boot_node_with_store(id, c11.clone(), KvStore::new());
    }
    sim.run_until_leader(ClusterId(10));
    sim.run_until_leader(ClusterId(11));
    sim.add_clients(4, Workload::default());
    sim.run_for(3 * SEC);
    sim.schedule_action(sim.time(), recraft::sim::Action::StopClients);
    sim.run_for(SEC);
    let keys_11 = {
        let l = sim.leader_of(ClusterId(11)).unwrap();
        sim.node(l).unwrap().state_machine().len()
    };

    let report = tc_merge(&mut sim, ClusterId(10), &[ClusterId(11)], CmFailure::None);
    assert!(report.completed);
    assert!(report.snapshot_us > 0 && report.rejoin_us > 0);

    // The destination now serves everything with all six nodes.
    sim.run_until_pred(60 * SEC, |s| {
        s.leader_of(ClusterId(10))
            .is_some_and(|l| s.node(l).unwrap().config().members().len() == 6)
    });
    let l = sim.leader_of(ClusterId(10)).unwrap();
    assert_eq!(sim.node(l).unwrap().config().ranges(), &RangeSet::full());
    assert!(sim.node(l).unwrap().state_machine().len() >= keys_11);
    sim.check_invariants();
}

#[test]
fn tc_cm_death_strands_the_operation() {
    // The paper's Table I point: one CM failure stops TC entirely.
    let mut sim = Sim::new(SimConfig::with_seed(0x7C59));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.run_for(SEC);
    let (lo, hi) = KeyRange::full().split_at(b"k00005000").unwrap();
    let report = tc_split(
        &mut sim,
        src,
        RangeSet::from(lo),
        &[TcSubcluster {
            cluster: ClusterId(11),
            members: ids(4..=6),
            ranges: RangeSet::from(hi),
        }],
        CmFailure::AfterPhase1,
    );
    assert!(!report.completed);
    // Arbitrarily later, the new cluster still does not exist: the removed
    // nodes are stranded (retired from the source, never restarted).
    sim.run_for(20 * SEC);
    assert!(sim.leader_of(ClusterId(11)).is_none());
    sim.check_invariants();
}
