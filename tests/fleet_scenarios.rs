//! Fleet-layer scenarios: the autonomous controller reshaping a multi-range
//! deployment inside the deterministic simulator, with the full safety
//! checks (linearizability witness, exactly-once session contract) asserted
//! *across* the reconfigurations rather than around them.

use recraft::fleet::PendingKind;
use recraft::net::AdminCmd;
use recraft::sim::{Action, Backend, FleetConfig, FleetHarness, Sim, SimConfig, SmKind, Workload};
use recraft::types::{ClusterId, NodeId, RangeSet, SplitSpec};

const SEC: u64 = 1_000_000;
/// Controller sampling interval: thresholds below are ops per this window.
const INTERVAL: u64 = 500_000;

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        split_ops: 120,
        merge_ops: 5,
        split_bytes: 64 << 20,
        merge_bytes: 16 << 20,
        cooldown_us: 2 * SEC,
        stall_us: 60 * SEC,
        max_inflight: 2,
        replication: 1,
        min_ranges: 1,
        max_ranges: 64,
    }
}

fn zipf_clients(n: u64, key_count: u64, s: f64) -> (u64, Workload) {
    (
        n,
        Workload {
            key_count,
            value_size: 256,
            get_ratio: 0.2,
            dup_prob: 0.02,
            zipf_s: s,
            ..Workload::default()
        },
    )
}

fn check_all(sim: &Sim) {
    sim.check_invariants();
    sim.check_linearizability();
    sim.assert_exactly_once();
}

/// An idle fleet is all cold: the controller merges adjacent ranges down to
/// `min_ranges`, one retired node per merge landing back in the spare pool.
#[test]
fn idle_fleet_merges_down_to_min_ranges() {
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0001), fleet_cfg(), INTERVAL);
    h.boot_fleet(4, 10_000);
    h.run(90 * SEC);
    let report = h.report();
    assert_eq!(report.ranges, 1, "cold fleet collapses to one range");
    assert!(report.merges >= 3, "4 → 1 needs 3 merges: {report:?}");
    assert_eq!(report.splits, 0, "nothing was hot: {report:?}");
    assert!(
        h.spare_count() >= 3,
        "each merge retires one node into the spare pool"
    );
    check_all(&h.sim);
}

/// Zipfian skew concentrates load on one range; the controller staffs it
/// (it is at minimum replication), splits it, and repeats — while the cold
/// tail stays put. Clients keep completing operations throughout, and the
/// history stays linearizable with exactly-once applies.
#[test]
fn skewed_load_splits_the_hot_range() {
    let mut cfg = fleet_cfg();
    cfg.merge_ops = 0; // merging needs ops == 0 AND bytes == 0: never here
    cfg.merge_bytes = 0;
    cfg.max_ranges = 8;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0002), cfg, INTERVAL);
    h.boot_fleet(2, 10_000);
    let (n, w) = zipf_clients(8, 10_000, 1.1);
    h.sim.add_clients(n, w);
    h.run(60 * SEC);
    let report = h.report();
    assert!(
        report.splits >= 2,
        "hot range splits repeatedly: {report:?}"
    );
    assert!(report.ranges > 2, "the fleet grew: {report:?}");
    assert!(
        report.completed_ops > 1_000,
        "clients made progress under reshaping: {report:?}"
    );
    let (splits, _, staffs) = report.planned;
    assert!(
        staffs >= splits,
        "every split of a replication-1 range staffs first: {report:?}"
    );
    check_all(&h.sim);
}

/// The full autonomy loop: skewed load grows the fleet, a mid-run skew flip
/// (the hot spot relocates to what was the cold tail) makes the old hot
/// ranges cold and the cold ones hot, and once the clients stop the fleet
/// merges back down. Splits and merges both happen autonomously in one run.
#[test]
fn skew_flip_grows_then_shrinks_the_fleet() {
    let mut cfg = fleet_cfg();
    cfg.max_ranges = 8;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0003), cfg, INTERVAL);
    h.boot_fleet(2, 10_000);
    let (n, w) = zipf_clients(8, 10_000, 1.2);
    h.sim.add_clients(n, w);
    h.run(40 * SEC);
    let grown = h.report();
    assert!(grown.splits >= 1, "skew grew the fleet: {grown:?}");

    // Thundering herd: the hot spot jumps to the middle of the keyspace.
    h.sim.update_workloads(|w| w.hot_offset = 5_000);
    h.run(30 * SEC);

    // Load stops; the fleet consolidates.
    let at = h.sim.time();
    h.sim.schedule_action(at, Action::StopClients);
    h.run(60 * SEC);
    let settled = h.report();
    assert!(settled.merges >= 1, "idle ranges merged back: {settled:?}");
    assert!(
        settled.ranges < grown.ranges + settled.merges as usize,
        "merging shrank the fleet: {grown:?} then {settled:?}"
    );
    check_all(&h.sim);
}

/// With the in-flight budget above 1, distinct ranges reconfigure
/// concurrently — the controller observably overlaps reconfigurations, and
/// the safety checks still hold over the whole history.
#[test]
fn overlapping_reconfigurations_preserve_exactly_once() {
    let mut cfg = fleet_cfg();
    cfg.split_ops = 60;
    cfg.max_inflight = 3;
    cfg.max_ranges = 12;
    cfg.merge_ops = 0;
    cfg.merge_bytes = 0;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0004), cfg, INTERVAL);
    h.boot_fleet(3, 30_000);
    // Mild skew: several ranges run hot at once.
    let (n, w) = zipf_clients(12, 30_000, 0.8);
    h.sim.add_clients(n, w);
    h.run(60 * SEC);
    let report = h.report();
    assert!(
        report.max_overlap >= 2,
        "reconfigurations overlapped in flight: {report:?}"
    );
    assert!(report.splits >= 2, "{report:?}");
    check_all(&h.sim);
}

/// Crash churn during autonomous reshaping: replication-3 ranges keep
/// serving while a member is down, the controller keeps planning, and the
/// rebooted node rejoins whatever cluster its range now belongs to.
#[test]
fn churn_with_crashes_during_reshaping() {
    let mut cfg = fleet_cfg();
    cfg.replication = 3;
    cfg.split_ops = 80;
    cfg.max_ranges = 6;
    cfg.merge_ops = 0;
    cfg.merge_bytes = 0;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0005), cfg, INTERVAL);
    h.boot_fleet(2, 10_000);
    let (n, w) = zipf_clients(8, 10_000, 1.1);
    h.sim.add_clients(n, w);
    h.run(15 * SEC);
    // Power-cut one member of the hot (lowest-keyed) range, mid-reshape.
    // The boot cluster may already have split itself away by now, so find
    // the range by ownership rather than by its boot-time cluster id.
    let owner = h
        .sim
        .nodes()
        .find(|n| n.config().ranges().contains(b"k00000000"))
        .expect("some cluster owns the low range")
        .cluster();
    let victim = h.sim.members_of(owner)[0];
    let at = h.sim.time();
    h.sim.schedule_action(at, Action::PowerCut(victim));
    h.sim
        .schedule_action(at + 10 * SEC, Action::RebootFromDisk(victim));
    h.run(45 * SEC);
    let report = h.report();
    assert!(
        report.splits >= 1,
        "reshaping survived the crash: {report:?}"
    );
    assert!(report.completed_ops > 500, "{report:?}");
    check_all(&h.sim);
}

/// Satellite: clients routing on a stale directory during an in-flight
/// split converge via `Redirect` without duplicate application, on every
/// state-machine × backend combination. The directory refresh is slowed to
/// half a second, so for a window every client is guaranteed to route on
/// pre-split topology.
#[test]
fn stale_directory_routing_converges_during_split() {
    for (sm, backend) in [
        (SmKind::Mem, Backend::Mem),
        (SmKind::Mem, Backend::Wal),
        (SmKind::Durable, Backend::Mem),
        (SmKind::Durable, Backend::Wal),
    ] {
        let mut cfg = SimConfig::with_seed(0xF1EE_0006)
            .with_machine(sm)
            .with_backend(backend);
        cfg.directory_delay = 500_000;
        let mut sim = Sim::new(cfg);
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &[NodeId(1), NodeId(2)], RangeSet::full());
        sim.run_until_leader(cluster);
        sim.add_clients(
            6,
            Workload {
                key_count: 2_000,
                value_size: 256,
                get_ratio: 0.2,
                dup_prob: 0.05,
                ..Workload::default()
            },
        );
        sim.run_for(5 * SEC);

        // Split at the fleet's midpoint while the clients hammer away.
        let node = sim.node(NodeId(1)).unwrap();
        let parent = node.config().clone();
        let key = recraft::fleet::midpoint_key(&parent.ranges().ranges()[0]).unwrap();
        let (lo, hi) = parent.ranges().ranges()[0].split_at(&key).unwrap();
        let spec = SplitSpec::new(
            vec![
                recraft::types::ClusterConfig::new(ClusterId(2), [NodeId(1)], RangeSet::from(lo))
                    .unwrap(),
                recraft::types::ClusterConfig::new(ClusterId(3), [NodeId(2)], RangeSet::from(hi))
                    .unwrap(),
            ],
            parent.members(),
            parent.ranges(),
        )
        .unwrap();
        let req = sim.admin(cluster, AdminCmd::Split(spec));
        sim.run_until_pred(60 * SEC, |s| s.admin_completed_at(req).is_some());
        sim.run_for(10 * SEC);

        assert!(
            sim.metrics().redirects > 0,
            "[{sm:?}/{backend:?}] stale routing must bounce at least once"
        );
        assert!(
            sim.leader_of(ClusterId(2)).is_some() && sim.leader_of(ClusterId(3)).is_some(),
            "[{sm:?}/{backend:?}] both children serving"
        );
        sim.check_invariants();
        sim.check_linearizability();
        sim.assert_exactly_once();
    }
}

/// The controller's pending-state machine is visible mid-flight: while a
/// split is outstanding the parent reports `Splitting` and is ineligible
/// for further planning.
#[test]
fn pending_state_is_observable_mid_split() {
    let mut cfg = fleet_cfg();
    cfg.merge_ops = 0;
    cfg.merge_bytes = 0;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0007), cfg, INTERVAL);
    h.boot_fleet(1, 4_000);
    let (n, w) = zipf_clients(6, 4_000, 0.9);
    h.sim.add_clients(n, w);
    // Run until the controller has something in flight, in small steps.
    let mut seen_pending = false;
    for _ in 0..120 {
        h.run(INTERVAL);
        if let Some(kind) = h.controller().pending(ClusterId(1)) {
            assert!(
                matches!(
                    kind,
                    PendingKind::Staffing { .. } | PendingKind::Splitting { .. }
                ),
                "a lone hot range staffs or splits, got {kind:?}"
            );
            seen_pending = true;
            break;
        }
    }
    assert!(seen_pending, "controller never engaged: {:?}", h.report());
    check_all(&h.sim);
}

/// Acceptance scale (run explicitly with `--ignored`): one hundred ranges
/// over a million-key zipfian keyspace, tens of autonomous reconfigurations
/// with overlap, zero linearizability or exactly-once violations.
#[test]
#[ignore = "acceptance scale: ~minutes of CPU; run with --ignored"]
fn acceptance_hundred_ranges_million_keys() {
    let mut cfg = fleet_cfg();
    cfg.split_ops = 60;
    cfg.max_inflight = 4;
    cfg.max_ranges = 160;
    cfg.min_ranges = 8;
    let mut h = FleetHarness::new(SimConfig::with_seed(0xF1EE_0100), cfg, INTERVAL);
    h.boot_fleet(100, 1_000_000);
    let (n, w) = zipf_clients(24, 1_000_000, 0.99);
    h.sim.add_clients(n, Workload { pipeline: 4, ..w });
    h.run(60 * SEC);
    // Thundering herd: relocate the hot spot mid-run.
    h.sim.update_workloads(|w| w.hot_offset = 500_000);
    h.run(60 * SEC);
    let report = h.report();
    assert!(
        report.reconfigurations >= 20,
        "autonomous reshaping at scale: {report:?}"
    );
    assert!(report.max_overlap >= 2, "{report:?}");
    assert!(report.completed_ops > 10_000, "{report:?}");
    check_all(&h.sim);
}
