//! The batched hot path's contract tests, at the node level:
//!
//! * the write-ahead barrier pays exactly **one group-commit sync** per
//!   `take_outputs` round, however many entries the round appended;
//! * apply batches **never straddle a reconfiguration barrier** — a run of
//!   commands abutting a SplitLeave (`Cnew`) entry flushes before the split
//!   completes, so range retention observes the same boundary as the
//!   one-at-a-time path did;
//! * a power cut landing **mid group-commit** rolls the torn batch back
//!   atomically at recovery — the log never reboots with part of a batch.

use bytes::Bytes;
use recraft::core::{MapMachine, Node, StateMachine, Timing};
use recraft::net::Message;
use recraft::storage::{LogEntry, LogStore, WalLog, WalOptions};
use recraft::types::{
    ClientOp, ClientRequest, ClusterConfig, ClusterId, ConfigChange, EpochTerm, LogIndex, NodeId,
    RangeSet, Result, SessionId, SplitSpec,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// ---- Helpers ---------------------------------------------------------------

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temp dir removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "recraft-pipeline-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TestDir(path)
    }

    fn open(&self) -> WalLog {
        WalLog::open_with(
            &self.0,
            WalOptions {
                fsync: false,
                segment_bytes: 1 << 20, // no mid-test segment roll
            },
        )
        .expect("open wal")
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn et(term: u32) -> EpochTerm {
    EpochTerm::new(0, term)
}

fn cmd_entry(i: u64, kv: &str) -> LogEntry {
    LogEntry::command(LogIndex(i), et(1), Bytes::from(kv.to_string()))
}

// ---- One sync per barrier round --------------------------------------------

#[test]
fn one_group_commit_sync_per_take_outputs_round() {
    let dir = TestDir::new("sync-count");
    let config = ClusterConfig::new(ClusterId(1), [NodeId(1)], RangeSet::full()).expect("config");
    let mut node = Node::with_store(
        NodeId(1),
        config,
        MapMachine::default(),
        dir.open(),
        Timing::default(),
        7,
    );
    // Boot writes snapshot + meta but no log records: no group commit yet.
    assert_eq!(node.log().sync_count(), 0);
    node.tick(400_000); // single-node election fires and wins instantly
    assert!(node.is_leader());
    let _ = node.take_outputs(); // the election no-op's barrier
    let base = node.log().sync_count();

    // Several client writes land in ONE event round (no barrier between).
    for (i, kv) in ["a=1", "b=2", "c=3", "d=4"].iter().enumerate() {
        node.step(
            500_000,
            NodeId(99),
            Message::ClientReq {
                req: ClientRequest {
                    session: SessionId(9),
                    seq: i as u64 + 1,
                    op: ClientOp::Command {
                        key: b"a".to_vec(),
                        cmd: Bytes::from(kv.to_string()),
                    },
                },
            },
        );
    }
    assert_eq!(
        node.log().sync_count(),
        base,
        "appends buffer until the barrier"
    );
    let _ = node.take_outputs();
    assert_eq!(
        node.log().sync_count(),
        base + 1,
        "one group-commit sync per take_outputs round, regardless of batch size"
    );
    // And the commands actually applied (single-node commits immediately).
    assert_eq!(node.state_machine().get(b"d"), Some(&b"4"[..]));

    // An idle round pays no sync at all.
    node.tick(510_000);
    let _ = node.take_outputs();
    assert_eq!(node.log().sync_count(), base + 1, "idle rounds are free");
}

// ---- Apply batches never straddle a reconfiguration barrier -----------------

/// A state machine that records the index-shape of every apply call the
/// consensus layer makes, delegating the semantics to [`MapMachine`].
#[derive(Debug, Default)]
struct RecordingMachine {
    inner: MapMachine,
    calls: Vec<Vec<u64>>,
}

impl StateMachine for RecordingMachine {
    fn apply(&mut self, index: LogIndex, cmd: &Bytes) -> Bytes {
        self.calls.push(vec![index.0]);
        self.inner.apply(index, cmd)
    }
    fn apply_batch(&mut self, entries: &[(LogIndex, Bytes)]) -> Vec<Bytes> {
        self.calls.push(entries.iter().map(|(i, _)| i.0).collect());
        entries
            .iter()
            .map(|(i, c)| self.inner.apply(*i, c))
            .collect()
    }
    fn query(&self, key: &[u8]) -> Bytes {
        self.inner.query(key)
    }
    fn snapshot(&self, ranges: &RangeSet) -> Bytes {
        self.inner.snapshot(ranges)
    }
    fn restore(&mut self, data: &Bytes) -> Result<()> {
        self.inner.restore(data)
    }
    fn restore_merged(&mut self, parts: &[Bytes]) -> Result<()> {
        self.inner.restore_merged(parts)
    }
    fn retain_ranges(&mut self, ranges: &RangeSet) {
        self.inner.retain_ranges(ranges);
    }
}

#[test]
fn apply_batch_flushes_before_split_leave_barrier() {
    // A follower of cluster 1 = {1, 2} receives, in ONE AppendEntries, a run
    // of commands abutting the split entries (Cjoint + Cnew) and a command
    // after them, all already committed by the leader. The apply pass must
    // hand the state machine [1, 2] BEFORE the split completes (range
    // retention!) and [5] after — never a batch containing the barrier.
    let base =
        ClusterConfig::new(ClusterId(1), [NodeId(1), NodeId(2)], RangeSet::full()).expect("config");
    let mut node = Node::new(
        NodeId(1),
        base.clone(),
        RecordingMachine::default(),
        Timing::default(),
        3,
    );
    let (lo, hi) = recraft::types::KeyRange::full().split_at(b"m").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), [NodeId(1)], RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), [NodeId(2)], RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    let entries = vec![
        cmd_entry(1, "a=1"),
        cmd_entry(2, "zz=2"), // outside node 1's post-split range
        LogEntry::config(LogIndex(3), et(1), ConfigChange::SplitJoint(spec.clone())),
        LogEntry::config(LogIndex(4), et(1), ConfigChange::SplitNew(spec)),
        cmd_entry(5, "b=5"),
    ];
    node.step(
        0,
        NodeId(2),
        Message::AppendEntries {
            cluster: ClusterId(1),
            eterm: et(1),
            prev_index: LogIndex(0),
            prev_eterm: EpochTerm::ZERO,
            entries,
            leader_commit: LogIndex(5),
            probe: 0,
        },
    );
    assert_eq!(node.cluster(), ClusterId(10), "split completed");
    assert_eq!(
        node.state_machine().calls,
        vec![vec![1, 2], vec![5]],
        "the run flushed at the barrier; nothing straddled the split entries"
    );
    // The boundary mattered: zz applied pre-split and was then retained away.
    assert_eq!(node.state_machine().inner.get(b"zz"), None);
    assert_eq!(node.state_machine().inner.get(b"b"), Some(&b"5"[..]));
}

// ---- Power cut mid group-commit ---------------------------------------------

#[test]
fn power_cut_mid_group_commit_rolls_back_the_whole_batch() {
    let dir = TestDir::new("mid-commit");
    let config =
        ClusterConfig::new(ClusterId(1), [NodeId(1), NodeId(2)], RangeSet::full()).expect("config");
    {
        let mut node = Node::with_store(
            NodeId(1),
            config,
            MapMachine::default(),
            dir.open(),
            Timing::default(),
            11,
        );
        // Round 1: two entries, barrier taken → durable.
        node.step(
            0,
            NodeId(2),
            Message::AppendEntries {
                cluster: ClusterId(1),
                eterm: et(1),
                prev_index: LogIndex(0),
                prev_eterm: EpochTerm::ZERO,
                entries: vec![cmd_entry(1, "a=1"), cmd_entry(2, "b=2")],
                leader_commit: LogIndex(0),
                probe: 0,
            },
        );
        let _ = node.take_outputs();
        // Round 2: an eight-entry batch lands as ONE group-commit record,
        // and the power dies BEFORE the barrier — mid-write.
        node.step(
            1,
            NodeId(2),
            Message::AppendEntries {
                cluster: ClusterId(1),
                eterm: et(1),
                prev_index: LogIndex(2),
                prev_eterm: et(1),
                entries: (3..=10).map(|i| cmd_entry(i, "x=y")).collect(),
                leader_commit: LogIndex(0),
                probe: 0,
            },
        );
        assert_eq!(node.log().last_index(), LogIndex(10));
        // Tear partway into the batch record: some of it hit the platter.
        node.power_cut(24);
    }
    // Recovery: the torn batch rolls back ATOMICALLY — the log reboots at
    // the last barrier, never with a partial batch.
    let node = Node::reopen(
        NodeId(1),
        dir.open(),
        MapMachine::default(),
        Timing::default(),
        11,
    )
    .expect("reopen");
    assert_eq!(
        node.log().last_index(),
        LogIndex(2),
        "the whole unsynced batch is gone"
    );
    assert_eq!(node.log().eterm_at(LogIndex(2)), Some(et(1)));
}
