//! The state-machine × log-backend scenario matrix: every lifecycle
//! scenario (split, merge, membership change, crash recovery) runs over all
//! four `RECRAFT_SM` × `RECRAFT_BACKEND` combinations from fixed seeds —
//! pinned in-process via `SimConfig::with_machine` / `with_backend`, so one
//! test binary covers the whole grid regardless of the environment it runs
//! in. Each combination must pass the linearizability witness and the
//! exactly-once contract; the durable machine must additionally keep its
//! snapshot transfer chunked (peak chunk bounded far below the keyspace).

use recraft::kv::KvCmd;
use recraft::net::AdminCmd;
use recraft::sim::{Action, Backend, Sim, SimConfig, SmKind, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, KeyRange, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec,
    TxId,
};

const SEC: u64 = 1_000_000;

/// The sim engine's `DurableKv` chunk bound plus frame overhead slack.
const CHUNK_BOUND: usize = 32 * 1024 + 1024;

fn combos() -> [(SmKind, Backend); 4] {
    [
        (SmKind::Mem, Backend::Mem),
        (SmKind::Mem, Backend::Wal),
        (SmKind::Durable, Backend::Mem),
        (SmKind::Durable, Backend::Wal),
    ]
}

fn sim_for(seed: u64, sm: SmKind, backend: Backend) -> Sim {
    Sim::new(
        SimConfig::with_seed(seed)
            .with_machine(sm)
            .with_backend(backend),
    )
}

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn workload() -> Workload {
    Workload {
        key_count: 400,
        value_size: 512,
        get_ratio: 0.2,
        dup_prob: 0.05,
        reads_via_log: false,
        pipeline: 1,
        ..Workload::default()
    }
}

fn check_all(sim: &Sim, tag: &str) {
    sim.check_invariants();
    sim.check_linearizability();
    sim.assert_exactly_once();
    let _ = tag;
}

/// On the durable machine, the leader's snapshot must partition into many
/// bounded chunks — peak single allocation tracks the chunk size, never the
/// keyspace.
fn check_chunk_bound(sim: &Sim, cluster: ClusterId, sm: SmKind) {
    use recraft::core::StateMachine as _;
    let leader = sim.leader_of(cluster).expect("leader");
    let node = sim.node(leader).expect("node");
    let machine = node.state_machine();
    let chunks = machine.snapshot_chunks(node.config().ranges());
    let total: usize = chunks.iter().map(bytes::Bytes::len).sum();
    match sm {
        SmKind::Durable => {
            let max = chunks.iter().map(bytes::Bytes::len).max().unwrap_or(0);
            assert!(
                max <= CHUNK_BOUND,
                "peak chunk {max} exceeds the {CHUNK_BOUND} bound (total {total})"
            );
            if total > 3 * CHUNK_BOUND {
                assert!(
                    chunks.len() > 3,
                    "a {total}-byte state must stream as several chunks"
                );
            }
        }
        SmKind::Mem => {
            // The whole-blob default: exactly one chunk (the baseline the
            // durable machine's bound is measured against).
            assert_eq!(chunks.len(), 1);
        }
    }
}

/// Split lifecycle: a loaded 6-node cluster splits into two subclusters;
/// both serve afterwards, the history linearizes, and every write applied
/// exactly once — on all four machine × backend combinations.
#[test]
fn split_lifecycle_across_all_combinations() {
    for (sm, backend) in combos() {
        let mut sim = sim_for(0x5117_0001, sm, backend);
        let src = ClusterId(1);
        sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
        sim.run_until_leader(src);
        sim.add_clients(3, workload());
        sim.run_for(2 * SEC);

        let leader = sim.leader_of(src).unwrap();
        let base = sim.node(leader).unwrap().config().clone();
        let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00000200").unwrap();
        let spec = SplitSpec::new(
            vec![
                ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
                ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap(),
            ],
            base.members(),
            base.ranges(),
        )
        .unwrap();
        sim.admin(src, AdminCmd::Split(spec));
        sim.run_until_pred(60 * SEC, |s| {
            s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
        });
        sim.run_for(3 * SEC);

        // Both halves serve their ranges after the split.
        let low = sim
            .execute_get(b"k00000001".to_vec())
            .expect("low half serves");
        let _ = low;
        sim.execute(
            b"k00000399".to_vec(),
            KvCmd::Put {
                key: b"k00000399".to_vec(),
                value: bytes::Bytes::from_static(b"post-split"),
            }
            .encode(),
        )
        .expect("high half serves");
        assert_eq!(
            sim.execute_get(b"k00000399".to_vec()).expect("read back"),
            Some(bytes::Bytes::from_static(b"post-split")),
            "[{sm:?}/{backend:?}]"
        );
        check_chunk_bound(&sim, ClusterId(11), sm);
        check_all(&sim, "split");
    }
}

/// Merge lifecycle: two loaded clusters merge through the 2PC + exchange;
/// the merged cluster serves the union keyspace.
#[test]
fn merge_lifecycle_across_all_combinations() {
    for (sm, backend) in combos() {
        let mut sim = sim_for(0x3E6E_0002, sm, backend);
        let (lo, hi) = KeyRange::full().split_at(b"k00000200").unwrap();
        sim.boot_cluster(ClusterId(10), &ids(1..=3), RangeSet::from(lo));
        sim.boot_cluster(ClusterId(11), &ids(4..=6), RangeSet::from(hi));
        sim.run_until_leader(ClusterId(10));
        sim.run_until_leader(ClusterId(11));
        sim.add_clients(3, workload());
        sim.run_for(2 * SEC);

        let tx = MergeTx {
            id: TxId(77),
            coordinator: ClusterId(10),
            participants: vec![
                MergeParticipant {
                    cluster: ClusterId(10),
                    members: ids(1..=3).into_iter().collect(),
                },
                MergeParticipant {
                    cluster: ClusterId(11),
                    members: ids(4..=6).into_iter().collect(),
                },
            ],
            new_cluster: ClusterId(20),
            resume_members: None,
        };
        sim.admin(ClusterId(10), AdminCmd::Merge(tx));
        sim.run_until_pred(90 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
        sim.run_for(3 * SEC);

        // The merged cluster owns both halves of the keyspace.
        for key in [b"k00000001".to_vec(), b"k00000399".to_vec()] {
            sim.execute(
                key.clone(),
                KvCmd::Put {
                    key: key.clone(),
                    value: bytes::Bytes::from_static(b"merged"),
                }
                .encode(),
            )
            .unwrap_or_else(|e| panic!("[{sm:?}/{backend:?}] merged write: {e}"));
        }
        check_chunk_bound(&sim, ClusterId(20), sm);
        check_all(&sim, "merge");
    }
}

/// Membership lifecycle: AddAndResize two joiners, then RemoveAndResize one
/// original member, under client load.
#[test]
fn membership_lifecycle_across_all_combinations() {
    for (sm, backend) in combos() {
        let mut sim = sim_for(0xADD1_0003, sm, backend);
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &ids(1..=3), RangeSet::full());
        sim.run_until_leader(cluster);
        sim.boot_joiner(NodeId(4));
        sim.boot_joiner(NodeId(5));
        sim.add_clients(2, workload());
        sim.run_for(SEC);

        let add = sim.admin(
            cluster,
            AdminCmd::AddAndResize([NodeId(4), NodeId(5)].into_iter().collect()),
        );
        sim.run_until_pred(60 * SEC, |s| s.admin_completed_at(add).is_some());
        sim.run_for(2 * SEC);
        let remove = sim.admin(
            cluster,
            AdminCmd::RemoveAndResize([NodeId(2)].into_iter().collect()),
        );
        sim.run_until_pred(60 * SEC, |s| s.admin_completed_at(remove).is_some());
        sim.run_for(3 * SEC);

        let leader = sim.leader_of(cluster).expect("leader after changes");
        let cfg = sim.node(leader).unwrap().config();
        assert_eq!(cfg.members().len(), 4, "[{sm:?}/{backend:?}] 3 + 2 - 1");
        assert!(!cfg.members().contains(&NodeId(2)));
        check_all(&sim, "membership");
    }
}

/// Crash-recovery lifecycle: a rolling power-cut/reboot storm under load —
/// the durable machine recovers through its own segment files where the
/// backend allows, and every combination converges to one linearizable
/// history with exactly-once applies.
#[test]
fn crash_recovery_lifecycle_across_all_combinations() {
    for (sm, backend) in combos() {
        let mut sim = sim_for(0x50AC_0004, sm, backend);
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &ids(1..=5), RangeSet::full());
        sim.run_until_leader(cluster);
        sim.add_clients(3, workload());
        sim.run_for(SEC);

        for (i, node) in ids(1..=5).into_iter().enumerate() {
            let at = sim.time() + (i as u64) * 2 * SEC;
            sim.schedule_action(at, Action::PowerCut(node));
            sim.schedule_action(at + 3 * SEC / 2, Action::RebootFromDisk(node));
        }
        sim.run_for(11 * SEC);
        sim.run_until_leader(cluster);
        sim.run_for(2 * SEC);

        assert!(
            sim.completed_ops() > 100,
            "[{sm:?}/{backend:?}] traffic flowed through the storm"
        );
        // Every rebooted node converged back to the cluster's prefix.
        let max_applied = sim.nodes().map(|n| n.applied_index().0).max().unwrap();
        for node in sim.nodes() {
            assert!(
                node.applied_index().0 + 64 > max_applied,
                "[{sm:?}/{backend:?}] node {} stuck at {} (cluster at {max_applied})",
                node.id(),
                node.applied_index()
            );
        }
        check_all(&sim, "crash");
    }
}

/// Reopen-equivalence: under identical seeds and schedules, the durable
/// machine's post-storm state matches the in-memory machine's key for key —
/// the two machines are observationally the same state machine.
#[test]
fn durable_state_matches_mem_state_under_identical_seeds() {
    for backend in [Backend::Mem, Backend::Wal] {
        let mut values: Vec<Vec<(u64, Option<bytes::Bytes>)>> = Vec::new();
        for sm in [SmKind::Mem, SmKind::Durable] {
            let mut sim = sim_for(0xE0_0005, sm, backend);
            let cluster = ClusterId(1);
            sim.boot_cluster(cluster, &ids(1..=3), RangeSet::full());
            sim.run_until_leader(cluster);
            // A deterministic script (no closed-loop randomness): the same
            // writes, a mid-script power-cut/reboot of a follower, and the
            // same reads.
            for i in 0..60u64 {
                let key = format!("k{:08}", i % 20).into_bytes();
                sim.execute(
                    key.clone(),
                    KvCmd::Put {
                        key,
                        value: bytes::Bytes::from(format!("v{i}")),
                    }
                    .encode(),
                )
                .expect("scripted write");
                if i == 30 {
                    let leader = sim.leader_of(cluster).unwrap();
                    let victim = ids(1..=3).into_iter().find(|n| *n != leader).unwrap();
                    sim.power_cut(victim);
                    sim.run_for(SEC);
                    sim.reboot(victim);
                    sim.run_for(SEC);
                }
            }
            sim.run_for(2 * SEC);
            let mut got = Vec::new();
            for i in 0..20u64 {
                let key = format!("k{i:08}").into_bytes();
                got.push((i, sim.execute_get(key).expect("scripted read")));
            }
            check_all(&sim, "equivalence");
            values.push(got);
        }
        assert_eq!(
            values[0], values[1],
            "mem and durable machines diverged on {backend:?}"
        );
    }
}
