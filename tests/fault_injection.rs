//! Fault-injection integration tests: crashes, partitions, and coordinator
//! failure in the middle of reconfigurations — the scenarios Table I and
//! §III-C1 "Handling Failures" reason about.

use recraft::core::PipelineConfig;
use recraft::net::AdminCmd;
use recraft::sim::{Action, Sim, SimConfig, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec, TxId,
};

const SEC: u64 = 1_000_000;

fn ids(r: std::ops::RangeInclusive<u64>) -> Vec<NodeId> {
    r.map(NodeId).collect()
}

fn split_spec(sim: &Sim, src: ClusterId) -> SplitSpec {
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00005000").unwrap();
    SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap()
}

fn two_clusters(seed: u64) -> (Sim, MergeTx) {
    let mut sim = Sim::new(SimConfig::with_seed(seed));
    let (lo, hi) = recraft::types::KeyRange::full()
        .split_at(b"k00005000")
        .unwrap();
    let c10 = ClusterConfig::new(ClusterId(10), ids(1..=3), RangeSet::from(lo)).unwrap();
    let c11 = ClusterConfig::new(ClusterId(11), ids(4..=6), RangeSet::from(hi)).unwrap();
    for id in ids(1..=3) {
        sim.boot_node_with_store(id, c10.clone(), recraft::kv::KvStore::new());
    }
    for id in ids(4..=6) {
        sim.boot_node_with_store(id, c11.clone(), recraft::kv::KvStore::new());
    }
    sim.run_until_leader(ClusterId(10));
    sim.run_until_leader(ClusterId(11));
    let tx = MergeTx {
        id: TxId(1),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: ids(1..=3).into_iter().collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: ids(4..=6).into_iter().collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    (sim, tx)
}

#[test]
fn split_survives_leader_crash_mid_operation() {
    let mut sim = Sim::new(SimConfig::with_seed(0xFA17));
    let src = ClusterId(1);
    sim.boot_cluster(src, &ids(1..=6), RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(4, Workload::default());
    sim.run_for(2 * SEC);
    let leader = sim.leader_of(src).unwrap();
    let spec = split_spec(&sim, src);
    sim.admin(src, AdminCmd::Split(spec));
    // Kill the driving leader 30ms in — mid joint phase.
    let t = sim.time();
    sim.schedule_action(t + 30_000, Action::Crash(leader));
    // A new leader is elected under the joint quorum and finishes the split
    // (re-proposing SplitLeaveJoint per the FAILURE/re-execution semantics).
    sim.run_until_pred(60 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    // The crashed node restarts later and finds its subcluster.
    let t = sim.time();
    sim.schedule_action(t + SEC, Action::Restart(leader));
    sim.run_until_pred(60 * SEC, |s| {
        s.node(leader).unwrap().current_eterm().epoch() == 1
    });
    sim.run_for(2 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
}

#[test]
fn merge_survives_coordinator_leader_crash() {
    // §III-C1: "a complicated failure scenario is the leader node of the
    // coordinating cluster failing ... the new leader can resume the 2PC
    // from the last known successful state."
    let (mut sim, tx) = two_clusters(0xC0DE);
    sim.run_for(SEC);
    let coord_leader = sim.leader_of(ClusterId(10)).unwrap();
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    let t = sim.time();
    // Crash after the prepare has had a chance to commit locally.
    sim.schedule_action(t + 100_000, Action::Crash(coord_leader));
    sim.schedule_action(t + 10 * SEC, Action::Restart(coord_leader));
    sim.run_until_pred(120 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    // Nodes finish their exchanges at different times; eventually all six
    // serve the merged cluster — including the restarted ex-leader, which
    // rejoins through pull/snapshot recovery.
    sim.run_until_pred(120 * SEC, |s| s.members_of(ClusterId(20)).len() == 6);
    sim.check_invariants();
    sim.check_linearizability();
}

#[test]
fn merge_survives_participant_follower_crashes() {
    // Table I: merge tolerates f_sub failures per subcluster.
    let (mut sim, tx) = two_clusters(0xFEED);
    sim.run_for(SEC);
    // Crash one non-leader node in each subcluster (f_sub = 1 for 3-node
    // subclusters).
    for cluster in [ClusterId(10), ClusterId(11)] {
        let leader = sim.leader_of(cluster).unwrap();
        let victim = sim
            .members_of(cluster)
            .into_iter()
            .find(|n| *n != leader)
            .unwrap();
        let t = sim.time();
        sim.schedule_action(t, Action::Crash(victim));
    }
    sim.run_for(SEC);
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_until_pred(120 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    sim.check_invariants();
}

#[test]
fn merge_stalls_when_a_subcluster_dies_and_aborts_cleanly_never() {
    // Killing a full subcluster (f_sub + 1 = 2 of 3) stops the merge — and
    // must NOT corrupt anything. After the nodes return, the merge finishes.
    let (mut sim, tx) = two_clusters(0xDEAD);
    sim.run_for(SEC);
    let victims: Vec<NodeId> = sim.members_of(ClusterId(11)).into_iter().take(2).collect();
    let t = sim.time();
    for v in &victims {
        sim.schedule_action(t, Action::Crash(*v));
    }
    sim.run_for(SEC);
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_for(20 * SEC);
    assert!(
        sim.leader_of(ClusterId(20)).is_none(),
        "merge cannot complete with a dead subcluster"
    );
    // Revive: the merge resumes and completes (pull/retry paths).
    let t = sim.time();
    for v in &victims {
        sim.schedule_action(t, Action::Restart(*v));
    }
    sim.run_until_pred(120 * SEC, |s| s.leader_of(ClusterId(20)).is_some());
    sim.check_invariants();
}

#[test]
fn pipelined_replication_survives_reorder_duplication_partition() {
    // The deep-pipeline configuration under the nastiest network the sim
    // models: 5% message loss (which also reorders the retransmit stream
    // relative to surviving traffic), duplicated client writes, and rolling
    // partitions. Out-of-order acks, nack rewinds, and stale-probe
    // retransmits all fire here; safety, linearizability, and the
    // exactly-once contract must hold regardless.
    for seed in [0x9199u64, 0x91AA] {
        let mut cfg = SimConfig::with_seed(seed).with_pipeline(PipelineConfig {
            max_inflight: 8,
            max_batch_entries: 16,
            max_batch_bytes: 1 << 20,
        });
        cfg.drop_prob = 0.05;
        let mut sim = Sim::new(cfg);
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &ids(1..=5), RangeSet::full());
        sim.run_until_leader(cluster);
        sim.add_clients(
            6,
            Workload {
                key_count: 50,
                get_ratio: 0.25,
                dup_prob: 0.2,
                ..Workload::default()
            },
        );
        let all = ids(1..=5);
        for k in 0..4u64 {
            let t = (k + 1) * 3 * SEC;
            let split_at = ((seed + k) % 4 + 1) as usize;
            sim.schedule_action(
                t,
                Action::Partition(vec![all[..split_at].to_vec(), all[split_at..].to_vec()]),
            );
            sim.schedule_action(t + SEC, Action::Heal);
        }
        sim.run_for(16 * SEC);
        sim.check_invariants();
        sim.check_linearizability();
        sim.assert_exactly_once();
        // The pipeline actually pipelined: some window went deeper than the
        // lockstep depth of one.
        let (_, max_depth) = sim.metrics().pipeline_maxima();
        assert!(
            max_depth > 1,
            "pipelining engaged under load (got {max_depth})"
        );
        // Liveness after the storm (client retry backoff is 5 virtual
        // seconds, so give the window room under the sustained loss rate).
        sim.run_until_pred(30 * SEC, |s| s.leader_of(cluster).is_some());
        let before = sim.completed_ops();
        sim.run_until_pred(30 * SEC, |s| s.completed_ops() > before);
    }
}

#[test]
fn random_fault_storm_preserves_safety() {
    // A randomized storm of crashes, restarts, and partitions under client
    // load; whatever happens, safety and linearizability must hold.
    for seed in [1u64, 2, 3] {
        let mut sim = Sim::new(SimConfig::with_seed(seed));
        let cluster = ClusterId(1);
        sim.boot_cluster(cluster, &ids(1..=5), RangeSet::full());
        sim.run_until_leader(cluster);
        sim.add_clients(
            6,
            Workload {
                key_count: 50,
                get_ratio: 0.3,
                ..Workload::default()
            },
        );
        // Storm schedule derived from the seed.
        let all = ids(1..=5);
        for k in 0..6u64 {
            let t = (k + 1) * 2 * SEC;
            let victim = all[((seed + k) % 5) as usize];
            sim.schedule_action(t, Action::Crash(victim));
            sim.schedule_action(t + SEC, Action::Restart(victim));
            if k % 2 == 0 {
                let split_at = ((seed + k) % 4 + 1) as usize;
                sim.schedule_action(
                    t + SEC / 2,
                    Action::Partition(vec![all[..split_at].to_vec(), all[split_at..].to_vec()]),
                );
                sim.schedule_action(t + 3 * SEC / 2, Action::Heal);
            }
        }
        sim.run_for(16 * SEC);
        sim.check_invariants();
        sim.check_linearizability();
        // Liveness after the storm: a leader exists and serves.
        sim.run_until_pred(30 * SEC, |s| s.leader_of(cluster).is_some());
        let before = sim.completed_ops();
        sim.run_for(3 * SEC);
        assert!(sim.completed_ops() > before, "cluster serves after storm");
    }
}
