//! Membership-change matrix: every transition between the practical cluster
//! sizes 2..=5 through ReCraft's Add/RemoveAndResize, checked live against
//! the analytic plan of §IV (step counts, intermediate quorums, final
//! majority quorums).

use recraft::core::votes::Plan;
use recraft::core::NodeEvent;
use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig};
use recraft::types::{ClusterId, NodeId, RangeSet};
use std::collections::BTreeSet;

const SEC: u64 = 1_000_000;
const CLUSTER: ClusterId = ClusterId(1);

fn setup(n_old: u64, n_max: u64, seed: u64) -> Sim {
    let mut sim = Sim::new(SimConfig::with_seed(seed));
    let boot: Vec<NodeId> = (1..=n_old).map(NodeId).collect();
    sim.boot_cluster(CLUSTER, &boot, RangeSet::full());
    // Pre-boot potential joiners (configuration-less until contacted).
    for id in n_old + 1..=n_max {
        sim.boot_joiner(NodeId(id));
    }
    sim.run_until_leader(CLUSTER);
    sim.run_for(SEC);
    sim
}

fn settled(sim: &Sim, members: u64) -> bool {
    sim.leader_of(CLUSTER).is_some_and(|l| {
        let n = sim.node(l).unwrap();
        n.config().members().len() == members as usize
            && n.config().quorum_size() == recraft::types::config::majority(members as usize)
            && n.derived().last_config_index.is_none()
    })
}

/// Runs the transition and returns the quorum sizes of every committed
/// resize step (observed on the leader).
fn run_transition(n_old: u64, n_new: u64) -> Vec<usize> {
    let mut sim = setup(n_old, n_old.max(n_new), 0x3311 + n_old * 16 + n_new);
    if n_new > n_old {
        let add: BTreeSet<NodeId> = (n_old + 1..=n_new).map(NodeId).collect();
        sim.admin(CLUSTER, AdminCmd::AddAndResize(add));
        sim.run_until_pred(30 * SEC, |s| settled(s, n_new));
    } else {
        let mut current = n_old;
        while current > n_new {
            let q_old = recraft::types::config::majority(current as usize) as u64;
            let r = (q_old - 1).min(current - n_new);
            let remove: BTreeSet<NodeId> = (current - r + 1..=current).map(NodeId).collect();
            sim.admin(CLUSTER, AdminCmd::RemoveAndResize(remove));
            current -= r;
            let c = current;
            sim.run_until_pred(30 * SEC, |s| settled(s, c));
        }
    }
    sim.check_invariants();
    // Collect the observed resize quorums from any node that survived to the
    // final configuration (leaders may have changed; every survivor folds
    // the same committed sequence).
    let survivor = sim.leader_of(CLUSTER).unwrap();
    sim.trace()
        .iter()
        .filter_map(|(_, node, ev)| match ev {
            NodeEvent::MembershipCommitted {
                kind: "resize",
                quorum,
                ..
            } if *node == survivor => Some(*quorum),
            _ => None,
        })
        .collect()
}

#[test]
fn matrix_2_to_5_matches_analytic_plan() {
    for n_old in 2u64..=5 {
        for n_new in 2u64..=5 {
            if n_old == n_new {
                continue;
            }
            let plan = Plan::new(n_old as usize, n_new as usize);
            let observed = run_transition(n_old, n_new);
            let expected: Vec<usize> = plan.stages.iter().map(|s| s.quorum).collect();
            assert_eq!(
                observed, expected,
                "{n_old}->{n_new}: observed quorums {observed:?}, plan {expected:?}"
            );
        }
    }
}

#[test]
fn grow_2_to_9_single_add() {
    // AddAndResize accepts an unbounded number of nodes in one step.
    let mut sim = setup(2, 9, 0x2909);
    let add: BTreeSet<NodeId> = (3..=9).map(NodeId).collect();
    sim.admin(CLUSTER, AdminCmd::AddAndResize(add));
    sim.run_until_pred(40 * SEC, |s| settled(s, 9));
    // Q_new-q = 9 - 2 + 1 = 8 must have been in force before the majority 5.
    let survivor = sim.leader_of(CLUSTER).unwrap();
    let quorums: Vec<usize> = sim
        .trace()
        .iter()
        .filter_map(|(_, node, ev)| match ev {
            NodeEvent::MembershipCommitted {
                kind: "resize",
                quorum,
                ..
            } if *node == survivor => Some(*quorum),
            _ => None,
        })
        .collect();
    assert_eq!(quorums, vec![8, 5]);
    sim.check_invariants();
}

#[test]
fn removal_beyond_cap_is_rejected_not_wedged() {
    let mut sim = setup(5, 5, 0x5CAB);
    let remove: BTreeSet<NodeId> = (3..=5).map(NodeId).collect(); // r = 3 = Q_old
    let req = sim.admin(CLUSTER, AdminCmd::RemoveAndResize(remove));
    sim.run_for(2 * SEC);
    assert!(
        sim.admin_failure(req).is_some(),
        "r >= Q_old must be rejected under P2'"
    );
    // The cluster is still fully functional.
    sim.add_clients(2, recraft::sim::Workload::default());
    sim.run_for(2 * SEC);
    assert!(sim.completed_ops() > 100);
    sim.check_invariants();
}

#[test]
fn baseline_joint_consensus_transition() {
    // The JC baseline reaches the same final configurations.
    let mut sim = setup(3, 5, 0x1C35);
    let target: BTreeSet<NodeId> = (1..=5).map(NodeId).collect();
    sim.admin(CLUSTER, AdminCmd::JointChange(target.clone()));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(CLUSTER)
            .is_some_and(|l| s.node(l).unwrap().config().members() == &target)
    });
    sim.check_invariants();
}
