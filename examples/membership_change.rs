//! Membership change: grow a 2-node cluster to 5 nodes in a single
//! `AddAndResize` step (Figure 1c) and compare against vanilla Raft's
//! one-at-a-time Add/RemoveServer RPC and joint consensus (§IV).
//!
//! Run with: `cargo run --release --example membership_change`

use recraft::core::votes::{ar_rpc_steps, jc_best_votes, jc_steps, jc_worst_votes, Plan};
use recraft::core::NodeEvent;
use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig};
use recraft::types::{ClusterId, NodeId, RangeSet};

const SEC: u64 = 1_000_000;

fn main() {
    println!("== Membership change: 2 -> 5 nodes ==\n");

    // The analytic plan (what §IV predicts).
    let plan = Plan::new(2, 5);
    println!("ReCraft plan:");
    for (i, stage) in plan.stages.iter().enumerate() {
        println!(
            "  step {}: {} members at quorum {}{}",
            i + 1,
            stage.members,
            stage.quorum,
            if stage.resize_only {
                " (ResizeQuorum)"
            } else {
                ""
            }
        );
    }
    println!(
        "consensus steps — ReCraft: {}, AR-RPC: {}, joint consensus: {}",
        plan.consensus_steps(),
        ar_rpc_steps(2, 5),
        jc_steps(2, 5)
    );
    println!(
        "intermediate votes — ReCraft: {}, JC best: {}, JC worst: {}\n",
        plan.max_intermediate_votes(),
        jc_best_votes(2, 5),
        jc_worst_votes(2, 5)
    );

    // Now do it live.
    let mut sim = Sim::new(SimConfig::default());
    let cluster = ClusterId(1);
    sim.boot_cluster(cluster, &[NodeId(1), NodeId(2)], RangeSet::full());
    sim.run_until_leader(cluster);
    // The three joiners boot configuration-less: they never campaign until
    // the leader contacts them (etcd's initial-cluster-state=existing).
    for id in 3..=5 {
        sim.boot_joiner(NodeId(id));
    }

    let t0 = sim.time();
    sim.admin(
        cluster,
        AdminCmd::AddAndResize((3..=5).map(NodeId).collect()),
    );
    sim.run_until_pred(20 * SEC, |s| {
        s.leader_of(cluster).is_some_and(|l| {
            let n = s.node(l).unwrap();
            n.config().members().len() == 5 && n.config().quorum_size() == 3
        })
    });

    // Report the two committed steps.
    let mut steps = 0;
    for (t, node, ev) in sim.trace() {
        if let NodeEvent::MembershipCommitted {
            kind: "resize",
            quorum,
            members,
            ..
        } = ev
        {
            if sim.leader_of(cluster) == Some(*node) {
                steps += 1;
                println!(
                    "t+{:.1} ms: committed {} members at quorum {quorum}",
                    (*t - t0) as f64 / 1000.0,
                    members.len()
                );
            }
        }
    }
    println!("({steps} wait-free consensus steps observed)");
    sim.check_invariants();
    println!("\nall safety checks passed");
}
