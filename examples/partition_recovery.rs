//! Fault recovery during a split: part of a subcluster misses the
//! `SplitLeaveJoint` message and the commit notification entirely (the
//! paper's Figure 3b scenario), then saves itself through pull-based
//! recovery — vote requests from the stale epoch are answered with pull
//! hints instead of votes (§III-B).
//!
//! Run with: `cargo run --release --example partition_recovery`

use recraft::core::NodeEvent;
use recraft::net::AdminCmd;
use recraft::sim::{Action, Sim, SimConfig, Workload};
use recraft::types::{ClusterConfig, ClusterId, NodeId, RangeSet, SplitSpec};

const SEC: u64 = 1_000_000;

fn main() {
    println!("== Split with a missed-out subcluster ==\n");
    let mut sim = Sim::new(SimConfig::default());
    let src = ClusterId(1);
    let nodes: Vec<NodeId> = (1..=6).map(NodeId).collect();
    sim.boot_cluster(src, &nodes, RangeSet::full());
    sim.run_until_leader(src);
    // Session clients with duplicate deliveries injected: retries through
    // the fault are exactly-once thanks to the server-side session table.
    sim.add_clients(
        4,
        Workload {
            dup_prob: 0.2,
            ..Workload::default()
        },
    );
    sim.run_for(2 * SEC);

    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00005000").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), (1..=3).map(NodeId), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), (4..=6).map(NodeId), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();

    // The leader's subcluster completes the split; two members of the other
    // subcluster are cut off just before the leave phase and miss everything.
    let other_sub: Vec<NodeId> = spec
        .subclusters()
        .iter()
        .find(|c| !c.contains(leader))
        .unwrap()
        .members()
        .iter()
        .copied()
        .take(2)
        .collect();
    println!("cutting off {other_sub:?} before the split leaves the joint mode");
    let rest: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !other_sub.contains(n))
        .collect();
    sim.schedule_action(sim.time(), Action::Partition(vec![other_sub.clone(), rest]));
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.node(leader).unwrap().current_eterm().epoch() == 1
    });
    println!(
        "split completed on the connected side at epoch 1; {:?} still at epoch {}",
        other_sub,
        sim.node(other_sub[0]).unwrap().current_eterm().epoch()
    );

    // Heal: the stale nodes campaign, receive pull hints, pull committed
    // entries, and complete the split on their own.
    let heal_at = sim.time() + SEC;
    sim.schedule_action(heal_at, Action::Heal);
    sim.run_until_pred(60 * SEC, |s| {
        other_sub
            .iter()
            .all(|n| s.node(*n).unwrap().current_eterm().epoch() == 1)
    });
    let pulls: usize = sim
        .trace()
        .iter()
        .filter(|(_, _, e)| matches!(e, NodeEvent::PulledEntries { .. }))
        .count();
    println!("healed: missed nodes recovered through {pulls} pull transfer(s)");

    // The recovered subcluster elects its own leader and serves its range.
    sim.run_until_pred(30 * SEC, |s| s.leader_of(ClusterId(11)).is_some());
    let l11 = sim.leader_of(ClusterId(11)).unwrap();
    println!(
        "subcluster c11 leader: {l11} at epoch {}",
        sim.node(l11).unwrap().current_eterm().epoch()
    );

    sim.run_for(2 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
    // The injected duplicate deliveries all deduplicated server-side.
    sim.assert_exactly_once();
    println!("\nall safety checks passed");
}
