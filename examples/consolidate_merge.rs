//! Consolidation: two underutilized 3-node clusters with disjoint ranges
//! merge into a single 6-node cluster through the self-contained
//! cluster-level 2PC + snapshot exchange — no external coordinator
//! (§III-C, Figure 8).
//!
//! Run with: `cargo run --release --example consolidate_merge`

use recraft::core::NodeEvent;
use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{
    ClusterConfig, ClusterId, MergeParticipant, MergeTx, NodeId, RangeSet, SplitSpec, TxId,
};

const SEC: u64 = 1_000_000;

fn main() {
    println!("== Cluster consolidation via self-contained merge ==\n");
    let mut sim = Sim::new(SimConfig::default());

    // Build the two clusters by splitting one (as a real deployment would
    // have).
    let src = ClusterId(1);
    let nodes: Vec<NodeId> = (1..=6).map(NodeId).collect();
    sim.boot_cluster(src, &nodes, RangeSet::full());
    sim.run_until_leader(src);
    sim.add_clients(2, Workload::default()); // underutilized, as in §VII-C
    sim.run_for(2 * SEC);
    let base = sim
        .node(sim.leader_of(src).unwrap())
        .unwrap()
        .config()
        .clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00005000").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), (1..=3).map(NodeId), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), (4..=6).map(NodeId), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    sim.run_for(3 * SEC);
    println!(
        "two clusters running: c10 ({} keys), c11 ({} keys)",
        sim.node(sim.leader_of(ClusterId(10)).unwrap())
            .unwrap()
            .state_machine()
            .len(),
        sim.node(sim.leader_of(ClusterId(11)).unwrap())
            .unwrap()
            .state_machine()
            .len(),
    );

    // Merge: cluster 10 coordinates; the decision is a 2PC whose participant
    // logs are the clusters' own Raft logs.
    let tx = MergeTx {
        id: TxId(1),
        coordinator: ClusterId(10),
        participants: vec![
            MergeParticipant {
                cluster: ClusterId(10),
                members: (1..=3).map(NodeId).collect(),
            },
            MergeParticipant {
                cluster: ClusterId(11),
                members: (4..=6).map(NodeId).collect(),
            },
        ],
        new_cluster: ClusterId(20),
        resume_members: None,
    };
    let t0 = sim.time();
    sim.admin(ClusterId(10), AdminCmd::Merge(tx));
    sim.run_until_pred(30 * SEC, |s| s.leader_of(ClusterId(20)).is_some());

    let prepared = sim
        .first_event(|e| matches!(e, NodeEvent::MergePrepareCommitted { .. }))
        .unwrap();
    let decided = sim
        .first_event(|e| matches!(e, NodeEvent::MergeOutcomeCommitted { .. }))
        .unwrap();
    let resumed = sim
        .first_event(|e| matches!(e, NodeEvent::MergeResumed { .. }))
        .unwrap();
    println!(
        "2PC prepare committed after {:.1} ms",
        (prepared - t0) as f64 / 1000.0
    );
    println!(
        "2PC outcome committed after {:.1} ms",
        (decided - t0) as f64 / 1000.0
    );
    println!(
        "first node resumed after {:.1} ms (includes snapshot exchange)",
        (resumed - t0) as f64 / 1000.0
    );

    let merged_leader = sim.leader_of(ClusterId(20)).unwrap();
    let n = sim.node(merged_leader).unwrap();
    println!(
        "merged cluster c20: {} members, epoch {} (= max(E)+1), {} keys, range {}",
        n.config().len(),
        n.current_eterm().epoch(),
        n.state_machine().len(),
        n.config().ranges()
    );

    // Traffic flows against the merged cluster.
    sim.run_for(3 * SEC);
    sim.check_invariants();
    sim.check_linearizability();
    println!("\nall safety checks passed");
}
