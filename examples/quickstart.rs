//! Quickstart: boot a 3-node ReCraft cluster, write through the typed
//! session API (exactly-once), read through ReadIndex (no log append), and
//! watch a leader election.
//!
//! Run with: `cargo run --release --example quickstart`

use recraft::core::Role;
use recraft::kv::KvCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{ClusterId, NodeId, RangeSet};

const SEC: u64 = 1_000_000;

fn main() {
    println!("== ReCraft quickstart ==\n");

    // A deterministic simulated network: ~0.2-0.8 ms one-way latency.
    let mut sim = Sim::new(SimConfig::default());
    let cluster = ClusterId(1);
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    sim.boot_cluster(cluster, &nodes, RangeSet::full());

    // Raft elects a leader within a few election timeouts.
    sim.run_until_leader(cluster);
    let leader = sim.leader_of(cluster).expect("leader elected");
    println!(
        "leader elected: {leader} at {} (epoch.term)",
        sim.node(leader).unwrap().current_eterm()
    );

    // One typed session round-trip: an exactly-once write, then a
    // linearizable ReadIndex read (quorum-confirmed, no log entry).
    let put = KvCmd::Put {
        key: b"k00000001".to_vec(),
        value: bytes::Bytes::from_static(b"hello"),
    };
    sim.execute(b"k00000001".to_vec(), put.encode())
        .expect("write accepted");
    let value = sim
        .execute_get(b"k00000001".to_vec())
        .expect("read served")
        .expect("key present");
    println!(
        "session write + ReadIndex read round-trip: k00000001 = {:?} ({} reads served off the log)",
        std::str::from_utf8(&value).unwrap(),
        sim.read_index_served()
    );

    // Closed-loop client sessions issue 512-byte puts (the paper's
    // workload) with a 10% linearizable-read mix.
    sim.add_clients(
        8,
        Workload {
            get_ratio: 0.1,
            ..Workload::default()
        },
    );
    sim.run_for(5 * SEC);
    let total = sim.completed_ops();
    println!("completed {total} linearizable operations in 5 virtual seconds");
    println!(
        "throughput ≈ {:.1} K req/s, p50 latency {} µs",
        total as f64 / 5.0 / 1000.0,
        sim.metrics()
            .latency_percentile(0, sim.time(), 0.5)
            .unwrap_or(0)
    );

    // Every replica applied the same commands in the same order.
    for id in nodes {
        let node = sim.node(id).unwrap();
        println!(
            "{id}: role {:?}, commit {}, applied {}, store holds {} keys",
            node.role(),
            node.commit_index(),
            node.applied_index(),
            node.state_machine().len()
        );
        assert_ne!(node.role(), Role::Removed);
    }

    // The run is verified: state machine safety, election safety, and
    // client-visible linearizability.
    sim.check_invariants();
    sim.check_linearizability();
    println!("messages delivered: {}", sim.metrics().messages_delivered);
    println!("\nall safety checks passed");
}
