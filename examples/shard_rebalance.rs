//! Shard rebalancing: a 6-node cluster saturated by writes splits into two
//! 3-node subclusters with disjoint key ranges, roughly doubling aggregate
//! write throughput — the paper's headline scenario (§I, Figure 7a).
//!
//! Run with: `cargo run --release --example shard_rebalance`

use recraft::net::AdminCmd;
use recraft::sim::{Sim, SimConfig, Workload};
use recraft::types::{ClusterConfig, ClusterId, NodeId, RangeSet, SplitSpec};

const SEC: u64 = 1_000_000;

fn main() {
    println!("== Shard rebalancing via self-contained split ==\n");
    let mut sim = Sim::new(SimConfig::default());
    let src = ClusterId(1);
    let nodes: Vec<NodeId> = (1..=6).map(NodeId).collect();
    sim.boot_cluster(src, &nodes, RangeSet::full());
    sim.run_until_leader(src);

    // Saturating closed-loop load.
    sim.add_clients(32, Workload::default());
    sim.run_for(5 * SEC);
    let before = sim.metrics().completed_between(2 * SEC, 5 * SEC) as f64 / 3.0;
    println!(
        "pre-split throughput:  {:.0} req/s (6-node cluster)",
        before
    );

    // Split: nodes 1-3 keep [k00000000, k00005000), nodes 4-6 take the rest.
    let leader = sim.leader_of(src).unwrap();
    let base = sim.node(leader).unwrap().config().clone();
    let (lo, hi) = base.ranges().ranges()[0].split_at(b"k00005000").unwrap();
    let spec = SplitSpec::new(
        vec![
            ClusterConfig::new(ClusterId(10), (1..=3).map(NodeId), RangeSet::from(lo)).unwrap(),
            ClusterConfig::new(ClusterId(11), (4..=6).map(NodeId), RangeSet::from(hi)).unwrap(),
        ],
        base.members(),
        base.ranges(),
    )
    .unwrap();
    let t_split = sim.time();
    sim.admin(src, AdminCmd::Split(spec));
    sim.run_until_pred(30 * SEC, |s| {
        s.leader_of(ClusterId(10)).is_some() && s.leader_of(ClusterId(11)).is_some()
    });
    let done = sim
        .first_event(|e| matches!(e, recraft::core::NodeEvent::SplitCompleted { .. }))
        .unwrap();
    println!(
        "split completed in {:.1} ms (two consensus steps, no data migration)",
        (done - t_split) as f64 / 1000.0
    );

    // Both subclusters now absorb the load independently.
    let t0 = sim.time();
    sim.run_for(5 * SEC);
    let after = sim.metrics().completed_between(t0 + SEC, t0 + 5 * SEC) as f64 / 4.0;
    println!(
        "post-split throughput: {:.0} req/s (two 3-node subclusters)",
        after
    );
    println!("speedup: {:.2}x", after / before);

    for c in [ClusterId(10), ClusterId(11)] {
        let leader = sim.leader_of(c).unwrap();
        let n = sim.node(leader).unwrap();
        println!(
            "  {c}: leader {leader}, epoch {}, serves {}",
            n.current_eterm().epoch(),
            n.config().ranges()
        );
    }

    sim.check_invariants();
    sim.check_linearizability();
    println!("\nall safety checks passed");
}
