//! # ReCraft — self-contained split, merge, and membership change for Raft
//!
//! A from-scratch Rust reproduction of *"ReCraft: Self-Contained Split,
//! Merge, and Membership Change of Raft Protocol"* (DSN 2025): a Raft core
//! extended with
//!
//! * **cluster split** — one Raft cluster divides into disjoint subclusters
//!   through a joint-consensus variant with separate election and commit
//!   quorums, epoch-prefixed terms, and pull-based recovery for subclusters
//!   that missed the completion;
//! * **cluster merge** — multiple clusters consolidate through a
//!   cluster-level two-phase commit (each cluster's own log is the durable
//!   2PC record — no external coordinator) followed by snapshot exchange;
//! * **multi-node membership change** — `AddAndResize` / `RemoveAndResize`
//!   move any number of nodes in one wait-free consensus step using the
//!   overlap-forcing quorum `Q_new-q = max(N_old, N_new) − Q_old + 1`.
//!
//! This crate is the umbrella: it re-exports the workspace members so a
//! downstream user can depend on `recraft` alone.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `recraft-core` | the protocol node ([`core::Node`]) |
//! | [`types`] | `recraft-types` | ids, epoch-terms, ranges, configs |
//! | [`storage`] | `recraft-storage` | log, hard state, snapshots |
//! | [`net`] | `recraft-net` | messages and envelopes |
//! | [`kv`] | `recraft-kv` | the etcd-like KV state machine |
//! | [`fleet`] | `recraft-fleet` | shard directory + autonomous split/merge controller |
//! | [`cluster`] | `recraft-cluster` | real deployment: threads + loopback TCP |
//! | [`sim`] | `recraft-sim` | deterministic cluster simulator |
//! | [`tc`] | `recraft-tc` | the TiKV/CockroachDB-style baseline |
//!
//! # Quickstart
//!
//! Run a three-node cluster in the simulator and write to it:
//!
//! ```
//! use recraft::sim::{Sim, SimConfig, Workload};
//! use recraft::types::{ClusterId, NodeId, RangeSet};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.boot_cluster(ClusterId(1), &[NodeId(1), NodeId(2), NodeId(3)], RangeSet::full());
//! sim.run_until_leader(ClusterId(1));
//! sim.add_clients(4, Workload::default());
//! sim.run_for(1_000_000); // one virtual second
//! assert!(sim.completed_ops() > 0);
//! sim.check_invariants();
//! sim.check_linearizability();
//! ```
//!
//! See `examples/` for split, merge, membership-change, and fault-recovery
//! walkthroughs.

pub use recraft_cluster as cluster;
pub use recraft_core as core;
pub use recraft_fleet as fleet;
pub use recraft_kv as kv;
pub use recraft_net as net;
pub use recraft_sim as sim;
pub use recraft_storage as storage;
pub use recraft_tc as tc;
pub use recraft_types as types;
