//! Offline, API-compatible subset of the [`bytes`](https://docs.rs/bytes)
//! crate, vendored because the build environment has no network access.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits with
//! the exact surface the ReCraft workspace uses: cheap clones and zero-copy
//! slicing of immutable buffers, big-endian integer get/put, `freeze`, and
//! the usual conversion / comparison impls. Semantics match the real crate
//! for this subset; performance characteristics are close (shared `Arc<[u8]>`
//! backing with offset windows) but not identical.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous buffer, advancing a cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Take the next `len` bytes as a [`Bytes`] and advance.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `len` bytes.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write access to an extensible buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by a shared `Arc<[u8]>` with an offset window, so `clone` and
/// [`Bytes::slice`] are O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// A buffer borrowing nothing: the static slice is copied once into the
    /// shared allocation (the real crate keeps the `'static` reference; for
    /// this subset a copy at construction is indistinguishable).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the (remaining) buffer in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-window of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the suffix starting at `at`, keeping the prefix.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Split off and return the prefix of length `at`, keeping the suffix.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// The buffer contents as a byte slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        self.split_to(len)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from_vec(b.into_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.as_slice().to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when construction is done.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Clear the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.inner), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.remaining(), 3);
        assert_eq!(&b[..], b"xyz");
    }

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from_static(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(w.slice(1..3), Bytes::from_static(b"or"));
        assert_eq!(b.len(), 11, "parent unchanged");
    }

    #[test]
    fn split_off_and_to() {
        let mut b = Bytes::from_static(b"abcdef");
        let tail = b.split_off(4);
        assert_eq!(&b[..], b"abcd");
        assert_eq!(&tail[..], b"ef");
        let mut c = Bytes::from_static(b"abcdef");
        let head = c.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&c[..], b"cdef");
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from_static(b"12345678");
        b.advance(3);
        assert_eq!(b.remaining(), 5);
        assert_eq!(&b.chunk()[..2], b"45");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(
            format!("{:?}", Bytes::from_static(b"a\x00b")),
            "b\"a\\x00b\""
        );
    }
}
