//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand)
//! crate, vendored because the build environment has no network access.
//!
//! Provides [`rngs::StdRng`] (an xoshiro256** generator seeded via
//! splitmix64, matching the real `StdRng`'s contract of a fast, seedable,
//! non-cryptographic-use-acceptable generator — the exact stream differs),
//! the [`Rng`] extension trait with `gen_range` / `gen_bool`, and
//! [`SeedableRng`]. Determinism holds: the same seed always produces the
//! same stream, which is all the deterministic simulator requires.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` via Lemire's multiply-shift (bias-free
/// enough for simulation purposes; no rejection loop).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Expand the 64-bit seed with splitmix64, per xoshiro guidance.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5u32..8);
            assert!((5..8).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "p=0.3 gave {heads}/10000");
    }
}
