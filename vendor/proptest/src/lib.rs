//! Offline, API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest) crate, vendored because the build
//! environment has no network access.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro (both
//! `name in strategy` and `name: Type` argument forms, plus the
//! `#![proptest_config(...)]` header), [`Strategy`] with `prop_map` and
//! `boxed`, integer-range strategies, [`Just`], tuple strategies,
//! [`prop_oneof!`], `prop::collection::vec`, [`any`] / [`Arbitrary`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! generated inputs but is not minimized), and the default case count is 256.
//! Runs are deterministic: the case stream depends only on the (fixed) seed,
//! so CI failures reproduce locally.

use std::fmt;

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating one test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn new(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// A uniform draw from `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion or precondition.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for `config`.
    #[must_use]
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Run `f` once per case with a per-case RNG; panic on the first failure.
    ///
    /// The per-case seed is `case` mixed with a fixed constant, so a failure
    /// message's case number is enough to reproduce it.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) when a case returns `Err`.
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let seed = 0x5EED_0000_0000_0000u64 ^ u64::from(case);
            let mut rng = TestRng::new(seed);
            if let Err(e) = f(&mut rng) {
                panic!("proptest case {case}/{} failed: {e}", self.config.cases);
            }
        }
    }
}

/// A recipe for generating values of `Value`.
///
/// Unlike real proptest there is no shrinking, so a strategy is just a
/// generation function.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// The weighted union behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight");
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII like real proptest's default char strategy.
        if rng.below(4) > 0 {
            (rng.below(0x5F) as u8 + 0x20) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(33) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<K: Arbitrary + Ord, V: Arbitrary> Arbitrary for std::collections::BTreeMap<K, V> {
    fn arbitrary(rng: &mut TestRng) -> std::collections::BTreeMap<K, V> {
        let len = rng.below(17) as usize;
        (0..len)
            .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
            .collect()
    }
}

impl<K: Arbitrary + Ord> Arbitrary for std::collections::BTreeSet<K> {
    fn arbitrary(rng: &mut TestRng) -> std::collections::BTreeSet<K> {
        let len = rng.below(17) as usize;
        (0..len).map(|_| K::arbitrary(rng)).collect()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `len` (e.g. `0..80`, `2..=4`, or an exact size).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo) as u64;
            let len = self.len.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, including the crate itself under
/// the name `prop` (for `prop::collection::vec` paths).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// A weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests.
///
/// Each `fn` becomes a `#[test]` that runs its body over generated inputs.
/// Arguments may be `name in strategy` or `name: Type` (the latter uses
/// [`any::<Type>()`]). An optional `#![proptest_config(expr)]` header sets
/// the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { $config; $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng; $($args)*);
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&$strategy, $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$strategy, $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn byte_strategy() -> impl Strategy<Value = u8> {
        prop_oneof![
            3 => (0u8..10).prop_map(|v| v * 2),
            1 => Just(255u8),
        ]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 5u64..10, b in 0u32..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b <= 3);
        }

        #[test]
        fn typed_args_work(v: u64, flag: bool, data: Vec<u8>) {
            let _ = (v, flag);
            prop_assert!(data.len() <= 64);
        }

        #[test]
        fn oneof_and_vec(items in prop::collection::vec(byte_strategy(), 0..20)) {
            prop_assert!(items.len() < 20);
            for item in items {
                prop_assert!(item == 255 || (item % 2 == 0 && item < 20));
            }
        }

        #[test]
        fn tuples_and_map(pair in (1u64..4, 0usize..2).prop_map(|(a, b)| a + b as u64)) {
            prop_assert!((1..=4).contains(&pair));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments on property fns must parse.
        #[test]
        fn config_header_applies(x in 0u8..=255) {
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(3));
        runner.run(|_| Err(TestCaseError::fail("boom")));
    }
}
