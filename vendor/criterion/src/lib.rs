//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion) benchmark harness, vendored
//! because the build environment has no network access.
//!
//! Supports the surface this workspace uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis it
//! measures a calibrated timed loop and prints a single `time: ... ns/iter`
//! line per benchmark, which is enough for coarse comparisons and keeps
//! `cargo bench` runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark after calibration.
const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// The benchmark manager: registers and runs individual benchmarks.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run `f` as the benchmark named `id`, printing its per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measured: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.measured
                / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!(
            "{id:<48} time: {:>12.1} ns/iter ({} iterations)",
            per_iter.as_nanos() as f64,
            bencher.iterations
        );
        self
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    measured: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measure `routine`: a short calibration run sizes the measured loop so
    /// the total stays near [`MEASURE_TARGET`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: run until ~10ms has elapsed to estimate per-iter cost.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) / u128::from(calib_iters);
        let iters = (MEASURE_TARGET.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = start.elapsed();
        self.iterations = iters;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0, "routine never ran");
    }
}
